//! Deterministic fault model: timed link/router failures.
//!
//! A [`FaultPlan`] is a normalized list of timed fault events — part of
//! a run's *configuration*, not of its execution: the same plan replayed
//! against the same workload and seed produces bit-identical results at
//! any shard count, because fault application is a pure function of
//! `(plan, simulated time)` and emits no calendar events.
//!
//! [`FaultState`] is the materialized view at one instant: per-port
//! dead-link bits plus dead-router flags. Faults are restricted to
//! router↔router links and whole routers; NIC links never fail (a dead
//! terminal would just shrink the workload, which a workload edit models
//! better). A link failure is bidirectional — both directions of the
//! wire die and recover together. A router failure kills the router and
//! every link touching it, permanently: there is no router-up event,
//! and link-up events on a dead router's ports are ignored.
//!
//! Route queries with an exclusion set live here too:
//! [`route_survives`] walks a descriptor's route and reports whether it
//! crosses any dead link, and [`live_distance`] /
//! [`minimal_route_exists`] answer whether a *minimal* route still
//! exists once the dead links are excluded (§3.2's base-latency model
//! silently assumes it does; after a fault that assumption must be
//! checked, not believed).

use crate::ids::{Endpoint, NodeId, Port, RouterId};
use crate::route::{next_port, PathDescriptor, RouteState};
use crate::{AnyTopology, Topology};

/// One fault event. Link events name a single wire by either endpoint;
/// the state transition always applies to both directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultEvent {
    /// The link at `(router, port)` fails in both directions.
    LinkDown {
        /// Either endpoint router of the wire.
        router: RouterId,
        /// The failing port on that router.
        port: Port,
    },
    /// The link at `(router, port)` recovers (ignored while either
    /// endpoint router is dead).
    LinkUp {
        /// Either endpoint router of the wire.
        router: RouterId,
        /// The recovering port on that router.
        port: Port,
    },
    /// `router` fails permanently, taking every attached link with it.
    RouterDown {
        /// The failing router.
        router: RouterId,
    },
}

impl FaultEvent {
    /// Canonical `(kind-tag, router, port)` encoding — orders
    /// same-instant plan events and feeds the engine's cache-key
    /// folding so the fault plan participates in a run's identity.
    pub fn key(&self) -> (u8, u32, u8) {
        match *self {
            FaultEvent::LinkDown { router, port } => (0, router.0, port.0),
            FaultEvent::LinkUp { router, port } => (1, router.0, port.0),
            FaultEvent::RouterDown { router } => (2, router.0, 0),
        }
    }
}

/// A fault event bound to an absolute simulated time (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimedFault {
    /// Simulated time at which the fault takes effect. The fabric
    /// applies it before dispatching any event at `t >= at`.
    pub at: u64,
    /// What fails (or recovers).
    pub fault: FaultEvent,
}

/// A normalized, time-ordered fault schedule. Empty means a fault-free
/// run — the default, and byte-identical to a run from before the fault
/// subsystem existed.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    events: Vec<TimedFault>,
}

impl FaultPlan {
    /// The empty (fault-free) plan.
    pub fn none() -> Self {
        Self::default()
    }

    /// An explicit plan. Events are normalized into `(time, content)`
    /// order so two plans listing the same faults in different input
    /// orders are the same plan (and hash identically in the run key).
    pub fn new(mut events: Vec<TimedFault>) -> Self {
        events.sort_by_key(|e| (e.at, e.fault.key()));
        Self { events }
    }

    /// A seed-derived plan: `links` link failures on router↔router
    /// wires, times uniform in `[from, to)`, every second failure
    /// recovering halfway between its onset and `to`. Deterministic in
    /// `(topology, seed)` — a splitmix64 stream, independent of the
    /// workload RNG.
    pub fn seeded(topo: &AnyTopology, seed: u64, links: usize, from: u64, to: u64) -> Self {
        assert!(from < to, "empty fault window");
        let wires = router_links(topo);
        if wires.is_empty() || links == 0 {
            return Self::none();
        }
        let mut state = seed ^ 0x6a09_e667_f3bc_c908;
        let mut next = move || splitmix64(&mut state);
        let mut events = Vec::new();
        for i in 0..links {
            let (router, port) = wires[(next() % wires.len() as u64) as usize];
            let at = from + next() % (to - from);
            events.push(TimedFault {
                at,
                fault: FaultEvent::LinkDown { router, port },
            });
            if i % 2 == 1 {
                events.push(TimedFault {
                    at: at + (to - at) / 2,
                    fault: FaultEvent::LinkUp { router, port },
                });
            }
        }
        Self::new(events)
    }

    /// The events in time order.
    pub fn events(&self) -> &[TimedFault] {
        &self.events
    }

    /// True when the plan has no events (fault-free run).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// splitmix64 step (same generator the traffic crate seeds streams
/// with; duplicated here so topology stays dependency-free).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Every router↔router wire, listed once per direction.
fn router_links(topo: &AnyTopology) -> Vec<(RouterId, Port)> {
    let mut out = Vec::new();
    for r in 0..topo.num_routers() as u32 {
        let rid = RouterId(r);
        for p in 0..topo.num_ports(rid) as u8 {
            if let Some(Endpoint::Router(..)) = topo.neighbor(rid, Port(p)) {
                out.push((rid, Port(p)));
            }
        }
    }
    out
}

/// The materialized fault view at one instant: which links and routers
/// are currently dead. Cheap point queries for the fabric's hot path
/// (one bit test per hop).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultState {
    /// One bit per port per router (no router has more than 64 ports).
    dead_ports: Vec<u64>,
    dead_router: Vec<bool>,
    /// Dead links + dead routers, for a cheap "anything failed?" gate.
    failures: u32,
}

impl FaultState {
    /// All links and routers live.
    pub fn new(topo: &AnyTopology) -> Self {
        Self {
            dead_ports: vec![0; topo.num_routers()],
            dead_router: vec![false; topo.num_routers()],
            failures: 0,
        }
    }

    /// Apply one fault event. Idempotent; events on NIC links or
    /// nonexistent ports are misconfigurations, ignored (flagged in
    /// debug builds).
    pub fn apply(&mut self, topo: &AnyTopology, fault: &FaultEvent) {
        match *fault {
            FaultEvent::LinkDown { router, port } => self.set_link(topo, router, port, true),
            FaultEvent::LinkUp { router, port } => {
                if let Some(Endpoint::Router(nr, _)) = topo.neighbor(router, port) {
                    if self.dead_router[router.idx()] || self.dead_router[nr.idx()] {
                        return; // dead routers keep their links down
                    }
                }
                self.set_link(topo, router, port, false);
            }
            FaultEvent::RouterDown { router } => {
                if !self.dead_router[router.idx()] {
                    self.dead_router[router.idx()] = true;
                    self.failures += 1;
                }
                for p in 0..topo.num_ports(router) as u8 {
                    self.set_link(topo, router, Port(p), true);
                }
            }
        }
    }

    fn set_link(&mut self, topo: &AnyTopology, router: RouterId, port: Port, dead: bool) {
        // NIC links never fail: a terminal-facing or nonexistent port is
        // a no-op (the RouterDown sweep walks every port, NICs included).
        let Some(Endpoint::Router(nr, np)) = topo.neighbor(router, port) else {
            return;
        };
        debug_assert!(port.idx() < 64 && np.idx() < 64);
        let fwd = 1u64 << port.idx();
        let rev = 1u64 << np.idx();
        let was = self.dead_ports[router.idx()] & fwd != 0;
        if dead {
            self.dead_ports[router.idx()] |= fwd;
            self.dead_ports[nr.idx()] |= rev;
            if !was {
                self.failures += 1;
            }
        } else {
            self.dead_ports[router.idx()] &= !fwd;
            self.dead_ports[nr.idx()] &= !rev;
            if was {
                self.failures -= 1;
            }
        }
    }

    /// True when the link at `(r, p)` is dead (either direction).
    #[inline]
    pub fn link_dead(&self, r: RouterId, p: Port) -> bool {
        self.dead_ports[r.idx()] & (1 << p.idx()) != 0
    }

    /// True when router `r` itself is dead.
    #[inline]
    pub fn router_dead(&self, r: RouterId) -> bool {
        self.dead_router[r.idx()]
    }

    /// True when any link or router is currently dead. The fabric's
    /// per-hop checks gate on this so fault-free runs pay one branch.
    #[inline]
    pub fn any(&self) -> bool {
        self.failures > 0
    }
}

/// Walk `descriptor`'s route from `src` to `dst` and report whether it
/// avoids every dead link and router — the exclusion-set route query
/// saved solutions and metapath entries are validated against. A route
/// that cannot be walked at all (descriptor/topology mismatch, livelock
/// guard) does not survive either.
pub fn route_survives(
    topo: &AnyTopology,
    src: NodeId,
    dst: NodeId,
    descriptor: PathDescriptor,
    faults: &FaultState,
) -> bool {
    if !faults.any() {
        return true;
    }
    let mut state = RouteState::new(descriptor);
    let mut r = topo.router_of(src);
    if faults.router_dead(r) {
        return false;
    }
    let limit = 4 * (topo.num_routers() + 1);
    for _ in 0..limit {
        let p = next_port(topo, r, dst, &mut state);
        if faults.link_dead(r, p) {
            return false;
        }
        match topo.neighbor(r, p) {
            Some(Endpoint::Terminal(n)) if n == dst => return !faults.router_dead(r),
            Some(Endpoint::Router(nr, _)) => {
                if faults.router_dead(nr) {
                    return false;
                }
                r = nr;
            }
            _ => return false,
        }
    }
    false
}

/// Router-hop distance from `src` to `dst` over *live* links only (BFS),
/// or `None` when the fault set disconnects them entirely.
pub fn live_distance(
    topo: &AnyTopology,
    src: NodeId,
    dst: NodeId,
    faults: &FaultState,
) -> Option<u32> {
    let (start, goal) = (topo.router_of(src), topo.router_of(dst));
    if faults.router_dead(start) || faults.router_dead(goal) {
        return None;
    }
    if start == goal {
        return Some(0);
    }
    let mut dist = vec![u32::MAX; topo.num_routers()];
    dist[start.idx()] = 0;
    let mut frontier = vec![start];
    let mut next = Vec::new();
    while !frontier.is_empty() {
        for &r in &frontier {
            for p in 0..topo.num_ports(r) as u8 {
                let p = Port(p);
                if faults.link_dead(r, p) {
                    continue;
                }
                if let Some(Endpoint::Router(nr, _)) = topo.neighbor(r, p) {
                    if !faults.router_dead(nr) && dist[nr.idx()] == u32::MAX {
                        dist[nr.idx()] = dist[r.idx()] + 1;
                        if nr == goal {
                            return Some(dist[nr.idx()]);
                        }
                        next.push(nr);
                    }
                }
            }
        }
        frontier.clear();
        std::mem::swap(&mut frontier, &mut next);
    }
    None
}

/// True when a route of *minimal* (pre-fault) length from `src` to
/// `dst` still exists once dead links are excluded. False means every
/// surviving route is a detour — the condition under which DRB's
/// zero-load base-path estimate (Eq. 3.5) goes stale.
pub fn minimal_route_exists(
    topo: &AnyTopology,
    src: NodeId,
    dst: NodeId,
    faults: &FaultState,
) -> bool {
    if !faults.any() {
        return true;
    }
    live_distance(topo, src, dst, faults) == Some(topo.distance(src, dst))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mesh2D;

    fn mesh() -> AnyTopology {
        AnyTopology::mesh8x8()
    }

    /// The port on `a`'s router facing `b`'s router (adjacent routers).
    fn port_toward(topo: &AnyTopology, a: RouterId, b: RouterId) -> Port {
        for p in 0..topo.num_ports(a) as u8 {
            if let Some(Endpoint::Router(nr, _)) = topo.neighbor(a, Port(p)) {
                if nr == b {
                    return Port(p);
                }
            }
        }
        panic!("{a} and {b} are not adjacent");
    }

    #[test]
    fn fresh_state_is_all_live() {
        let topo = mesh();
        let f = FaultState::new(&topo);
        assert!(!f.any());
        assert!(route_survives(
            &topo,
            NodeId(0),
            NodeId(63),
            PathDescriptor::Minimal,
            &f
        ));
        assert!(minimal_route_exists(&topo, NodeId(0), NodeId(63), &f));
    }

    #[test]
    fn link_down_is_bidirectional_and_up_restores() {
        let topo = mesh();
        let m = Mesh2D::new(8, 8);
        let (a, b) = (m.at(0, 0), m.at(1, 0));
        let (pa, pb) = (port_toward(&topo, a, b), port_toward(&topo, b, a));
        let mut f = FaultState::new(&topo);
        f.apply(
            &topo,
            &FaultEvent::LinkDown {
                router: a,
                port: pa,
            },
        );
        assert!(f.any());
        assert!(f.link_dead(a, pa));
        assert!(f.link_dead(b, pb), "reverse direction dies too");
        // Naming the wire by its other endpoint recovers both sides.
        f.apply(
            &topo,
            &FaultEvent::LinkUp {
                router: b,
                port: pb,
            },
        );
        assert!(!f.link_dead(a, pa));
        assert!(!f.any());
    }

    #[test]
    fn router_down_kills_all_links_permanently() {
        let topo = mesh();
        let m = Mesh2D::new(8, 8);
        let r = m.at(3, 3);
        let mut f = FaultState::new(&topo);
        f.apply(&topo, &FaultEvent::RouterDown { router: r });
        assert!(f.router_dead(r));
        for p in 0..topo.num_ports(r) as u8 {
            if let Some(Endpoint::Router(..)) = topo.neighbor(r, Port(p)) {
                assert!(f.link_dead(r, Port(p)));
            }
        }
        // Link-up on a dead router's port is ignored.
        let nb = m.at(4, 3);
        let p = port_toward(&topo, r, nb);
        f.apply(&topo, &FaultEvent::LinkUp { router: r, port: p });
        assert!(f.link_dead(r, p));
        f.apply(
            &topo,
            &FaultEvent::LinkUp {
                router: nb,
                port: port_toward(&topo, nb, r),
            },
        );
        assert!(f.link_dead(r, p), "named from the live side too");
    }

    #[test]
    fn route_survival_tracks_the_walked_path() {
        let topo = mesh();
        let m = Mesh2D::new(8, 8);
        // DOR x-first from (0,0) to (3,0): crosses (1,0)->(2,0).
        let (src, dst) = (m.node_at(0, 0), m.node_at(3, 0));
        let (a, b) = (m.at(1, 0), m.at(2, 0));
        let mut f = FaultState::new(&topo);
        f.apply(
            &topo,
            &FaultEvent::LinkDown {
                router: a,
                port: port_toward(&topo, a, b),
            },
        );
        assert!(!route_survives(
            &topo,
            src,
            dst,
            PathDescriptor::Minimal,
            &f
        ));
        // An MSP detouring through row 1 avoids the dead wire.
        let msp = PathDescriptor::Msp {
            in1: m.node_at(0, 1),
            in2: m.node_at(3, 1),
        };
        assert!(route_survives(&topo, src, dst, msp, &f));
        // A row-0 wire is not minimal-critical between rows: minimal
        // routes still exist for cross-row pairs, but not within row 0.
        assert!(!minimal_route_exists(&topo, src, dst, &f));
        assert_eq!(live_distance(&topo, src, dst, &f), Some(5));
        assert!(minimal_route_exists(
            &topo,
            m.node_at(0, 4),
            m.node_at(3, 4),
            &f
        ));
    }

    #[test]
    fn disconnection_is_reported() {
        let topo = mesh();
        let m = Mesh2D::new(8, 8);
        // Kill every wire out of corner (0,0).
        let c = m.at(0, 0);
        let mut f = FaultState::new(&topo);
        for p in 0..topo.num_ports(c) as u8 {
            f.apply(
                &topo,
                &FaultEvent::LinkDown {
                    router: c,
                    port: Port(p),
                },
            );
        }
        assert_eq!(
            live_distance(&topo, m.node_at(0, 0), m.node_at(5, 5), &f),
            None
        );
        assert!(!minimal_route_exists(
            &topo,
            m.node_at(0, 0),
            m.node_at(5, 5),
            &f
        ));
    }

    #[test]
    fn plans_normalize_and_seeded_plans_are_reproducible() {
        let topo = mesh();
        let a = TimedFault {
            at: 200,
            fault: FaultEvent::LinkDown {
                router: RouterId(0),
                port: Port(0),
            },
        };
        let b = TimedFault {
            at: 100,
            fault: FaultEvent::RouterDown {
                router: RouterId(5),
            },
        };
        assert_eq!(FaultPlan::new(vec![a, b]), FaultPlan::new(vec![b, a]));
        assert_eq!(FaultPlan::new(vec![a, b]).events()[0].at, 100);

        let p1 = FaultPlan::seeded(&topo, 7, 4, 1_000, 2_000);
        let p2 = FaultPlan::seeded(&topo, 7, 4, 1_000, 2_000);
        assert_eq!(p1, p2, "same seed, same plan");
        assert_ne!(p1, FaultPlan::seeded(&topo, 8, 4, 1_000, 2_000));
        assert!(p1.events().len() >= 4, "downs plus paired recoveries");
        assert!(p1.events().windows(2).all(|w| w[0].at <= w[1].at));
        for e in p1.events() {
            assert!((1_000..2_000 + 1_000).contains(&e.at));
        }
        assert!(FaultPlan::none().is_empty());
    }

    #[test]
    fn faults_apply_on_trees_too() {
        let topo = AnyTopology::fat_tree_64();
        let mut f = FaultState::new(&topo);
        // Leaf switch 0's first up link (ports k.. are up ports).
        f.apply(
            &topo,
            &FaultEvent::LinkDown {
                router: RouterId(0),
                port: Port(4),
            },
        );
        assert!(f.any());
        // Seed 0 ascends through up port 4 at the leaf; it must not
        // survive, while some other seed must.
        let (src, dst) = (NodeId(0), NodeId(63));
        let dead = route_survives(&topo, src, dst, PathDescriptor::TreeSeed { seed: 0 }, &f);
        assert!(!dead);
        let live = (0..16u32)
            .any(|s| route_survives(&topo, src, dst, PathDescriptor::TreeSeed { seed: s }, &f));
        assert!(live, "other NCA seeds avoid the dead up link");
        assert!(minimal_route_exists(&topo, src, dst, &f));
    }
}
