//! Identifier newtypes.
//!
//! Following the thesis' vocabulary (§3.1 "Initial Assumptions"):
//! a **node** is a terminal/processing node, a **router** is a network
//! device that forwards packets. Ports are router-local link indices.

/// A terminal (processing) node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// A router (switch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RouterId(pub u32);

/// A router-local port index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Port(pub u8);

impl NodeId {
    /// Index as `usize` for table lookups.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl RouterId {
    /// Index as `usize` for table lookups.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl Port {
    /// Index as `usize` for table lookups.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl std::fmt::Display for RouterId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl std::fmt::Display for Port {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// What sits at the far end of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// Another router, reached on its port.
    Router(RouterId, Port),
    /// A terminal node.
    Terminal(NodeId),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(RouterId(7).to_string(), "r7");
        assert_eq!(Port(1).to_string(), "p1");
    }

    #[test]
    fn idx_roundtrip() {
        assert_eq!(NodeId(9).idx(), 9);
        assert_eq!(RouterId(9).idx(), 9);
        assert_eq!(Port(9).idx(), 9);
    }
}
