//! # prdrb-topology — network topologies and path machinery
//!
//! The two topologies of the thesis' evaluation chapter:
//!
//! * an 8×8 **2-D mesh** (Table 4.2, hot-spot experiments §4.5/§4.6.2), and
//! * a **k-ary n-tree** fat-tree, instantiated as the 4-ary 3-tree of
//!   Table 4.3 (§2.1.5, §4.6.3, §4.8),
//!
//! plus the dragonfly-class extension topologies where adaptive routing
//! is contested (global links are scarce and shared):
//!
//! * a **dragonfly** with the palm-tree global arrangement, and
//! * a **megafly** (two-level group-of-fat-trees).
//!
//! On top of the raw graphs this crate provides:
//!
//! * deterministic minimal routing (DOR on the mesh; NCA up/down on the
//!   tree, §2.1.5; gateway-directed on the dragonfly family),
//! * [`PathDescriptor`]s — the fixed-size routing headers packets carry
//!   (§3.3.1: source, two intermediate nodes, destination), and
//! * [`altpath`] — generation of the *multi-step paths* (MSPs) DRB expands
//!   a metapath with (§3.2.3, Figs 3.6/3.7), derived from graph
//!   structure (BFS rings) rather than per-shape tables.

pub mod altpath;
pub mod dragonfly;
pub mod fattree;
pub mod faults;
pub mod ids;
pub mod megafly;
pub mod mesh;
pub mod partition;
pub mod route;
pub mod table;

pub use altpath::AltPathProvider;
pub use dragonfly::Dragonfly;
pub use fattree::KAryNTree;
pub use faults::{
    live_distance, minimal_route_exists, route_survives, FaultEvent, FaultPlan, FaultState,
    TimedFault,
};
pub use ids::{Endpoint, NodeId, Port, RouterId};
pub use megafly::Megafly;
pub use mesh::Mesh2D;
pub use partition::ShardPlan;
pub use route::{next_port, route_len, walk_route, PathDescriptor, RouteState};
pub use table::RouteTable;

/// A network topology: routers, terminals, links and minimal routing.
///
/// Terminals (processing nodes, §3.1 "nodes") attach to routers; routers
/// ("network nodes") forward packets. All methods are cheap and
/// allocation-free so routing can run per-hop in the event loop.
pub trait Topology {
    /// Number of terminals (processing nodes).
    fn num_terminals(&self) -> usize;
    /// Number of routers.
    fn num_routers(&self) -> usize;
    /// Number of ports on router `r` (including terminal-facing ports).
    fn num_ports(&self, r: RouterId) -> usize;
    /// The router terminal `n` attaches to.
    fn router_of(&self, n: NodeId) -> RouterId;
    /// The port on `router_of(n)` that faces terminal `n`.
    fn terminal_port(&self, n: NodeId) -> Port;
    /// What is on the far side of `(r, p)`, if anything.
    fn neighbor(&self, r: RouterId, p: Port) -> Option<Endpoint>;
    /// Deterministic minimal next-hop port from `r` toward terminal `dst`.
    fn minimal_port(&self, r: RouterId, dst: NodeId) -> Port;
    /// All ports at `r` that lie on some minimal route to `dst`.
    fn minimal_candidates(&self, r: RouterId, dst: NodeId, out: &mut Vec<Port>);
    /// Router-hop distance between the attachment routers of `a` and `b`.
    fn distance(&self, a: NodeId, b: NodeId) -> u32;
    /// Latency class of the physical wire behind `(r, p)`.
    ///
    /// Real interconnects are built from heterogeneous cables: short
    /// backplane traces inside a board or pod, long inter-cabinet
    /// (optical) runs, and the server/NIC attachment itself. Classes
    /// index into [`prdrb-network`]'s per-class extra-delay table:
    ///
    /// * `LINK_CLASS_LOCAL` (0) — intra-board / intra-pod electrical,
    /// * `LINK_CLASS_GLOBAL` (1) — long inter-board / root-level wires,
    /// * `LINK_CLASS_SERVER` (2) — the terminal ↔ router attachment.
    ///
    /// The class must be a property of the *wire*, not the endpoint:
    /// `link_class(r, p)` and `link_class` of the reverse endpoint must
    /// agree. The sharded driver relies on this to derive per-cut
    /// lookahead from either side of a cross-shard link.
    fn link_class(&self, r: RouterId, p: Port) -> u8 {
        let _ = (r, p);
        LINK_CLASS_LOCAL
    }
    /// Human-readable name for reports.
    fn label(&self) -> String;
}

/// Short intra-board / intra-pod wire.
pub const LINK_CLASS_LOCAL: u8 = 0;
/// Long inter-board / root-level wire.
pub const LINK_CLASS_GLOBAL: u8 = 1;
/// Terminal (server NIC) attachment wire.
pub const LINK_CLASS_SERVER: u8 = 2;
/// Number of distinct latency classes.
pub const NUM_LINK_CLASSES: usize = 3;

/// Concrete topology dispatch (keeps the engine monomorphic and simple).
#[derive(Debug, Clone)]
pub enum AnyTopology {
    /// 2-D mesh.
    Mesh(Mesh2D),
    /// k-ary n-tree fat-tree.
    Tree(KAryNTree),
    /// Dragonfly (palm-tree global arrangement).
    Dragonfly(Dragonfly),
    /// Megafly (group-of-fat-trees).
    Megafly(Megafly),
}

macro_rules! dispatch {
    ($self:ident, $t:ident => $body:expr) => {
        match $self {
            AnyTopology::Mesh($t) => $body,
            AnyTopology::Tree($t) => $body,
            AnyTopology::Dragonfly($t) => $body,
            AnyTopology::Megafly($t) => $body,
        }
    };
}

impl Topology for AnyTopology {
    #[inline]
    fn num_terminals(&self) -> usize {
        dispatch!(self, t => t.num_terminals())
    }
    #[inline]
    fn num_routers(&self) -> usize {
        dispatch!(self, t => t.num_routers())
    }
    #[inline]
    fn num_ports(&self, r: RouterId) -> usize {
        dispatch!(self, t => t.num_ports(r))
    }
    #[inline]
    fn router_of(&self, n: NodeId) -> RouterId {
        dispatch!(self, t => t.router_of(n))
    }
    #[inline]
    fn terminal_port(&self, n: NodeId) -> Port {
        dispatch!(self, t => t.terminal_port(n))
    }
    #[inline]
    fn neighbor(&self, r: RouterId, p: Port) -> Option<Endpoint> {
        dispatch!(self, t => t.neighbor(r, p))
    }
    #[inline]
    fn minimal_port(&self, r: RouterId, dst: NodeId) -> Port {
        dispatch!(self, t => t.minimal_port(r, dst))
    }
    #[inline]
    fn minimal_candidates(&self, r: RouterId, dst: NodeId, out: &mut Vec<Port>) {
        dispatch!(self, t => t.minimal_candidates(r, dst, out))
    }
    #[inline]
    fn distance(&self, a: NodeId, b: NodeId) -> u32 {
        dispatch!(self, t => t.distance(a, b))
    }
    #[inline]
    fn link_class(&self, r: RouterId, p: Port) -> u8 {
        dispatch!(self, t => t.link_class(r, p))
    }
    #[inline]
    fn label(&self) -> String {
        dispatch!(self, t => t.label())
    }
}

impl AnyTopology {
    /// The 8×8 mesh of Table 4.2.
    pub fn mesh8x8() -> Self {
        AnyTopology::Mesh(Mesh2D::new(8, 8))
    }

    /// The 4-ary 3-tree (64 terminals) of Table 4.3.
    pub fn fat_tree_64() -> Self {
        AnyTopology::Tree(KAryNTree::new(4, 3))
    }

    /// The canonical 72-terminal dragonfly (9 groups × 4 routers × 2
    /// globals, fully-wired palm tree: G = 8 = a-1).
    pub fn dragonfly72() -> Self {
        AnyTopology::Dragonfly(Dragonfly::new(9, 4, 2))
    }

    /// The canonical 20-terminal megafly (5 groups of 2 leaves + 2
    /// spines, 2 globals per spine: G = 4 = a-1).
    pub fn megafly20() -> Self {
        AnyTopology::Megafly(Megafly::new(5, 2, 2, 2))
    }
}
