//! Megafly / dragonfly+ topology: a two-level group-of-fat-trees.
//!
//! Each of the `a` groups is a complete bipartite graph between `l`
//! leaf routers (which carry `p = s` terminals each) and `s` spine
//! routers (which carry `h` global ports each). Groups are joined by
//! the same palm-tree arrangement as [`crate::Dragonfly`], over the
//! group's `G = s·h` spine global ports numbered `k = m·h + j` (spine
//! `m`, port `j`). Because leaves never own global ports, every
//! inter-group minimal route is exactly leaf → spine → spine → leaf
//! (3 hops), and every spine holding *any* global link toward the
//! destination group is a legal minimal ascent — that diversity is
//! what [`Topology::minimal_candidates`] exposes and what per-hop
//! adaptive ascent ([`crate::route::PathDescriptor::AdaptiveUp`])
//! exploits. Link classes: terminal ports SERVER, leaf↔spine LOCAL,
//! inter-group GLOBAL.

use crate::ids::{Endpoint, NodeId, Port, RouterId};
use crate::{Topology, LINK_CLASS_GLOBAL, LINK_CLASS_LOCAL, LINK_CLASS_SERVER};

/// An `a`-group megafly with `l` leaves and `s` spines per group, `h`
/// global ports per spine and `s` terminals per leaf (the balanced
/// `p = s` configuration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Megafly {
    a: u32,
    l: u32,
    s: u32,
    h: u32,
}

impl Megafly {
    /// Build an `a`-group megafly. Requires `a ≥ 2` and `s·h ≥ a-1`
    /// (round 0 of the palm tree must reach every peer group).
    pub fn new(a: u32, l: u32, s: u32, h: u32) -> Self {
        assert!(a >= 2, "megafly needs at least two groups");
        assert!(l >= 1 && s >= 1 && h >= 1, "megafly needs a real group");
        assert!(
            s * h >= a - 1,
            "palm tree round 0 must reach all {} peer groups, got G = {}",
            a - 1,
            s * h
        );
        let ports = (s + s).max(l + h);
        assert!(ports <= u8::MAX as u32, "port index must fit u8");
        Self { a, l, s, h }
    }

    /// Number of groups.
    pub fn groups(&self) -> u32 {
        self.a
    }

    /// Leaf routers per group.
    pub fn leaves(&self) -> u32 {
        self.l
    }

    /// Spine routers per group.
    pub fn spines(&self) -> u32 {
        self.s
    }

    /// Global ports per spine.
    pub fn global_ports(&self) -> u32 {
        self.h
    }

    /// Terminals per leaf (`p = s`).
    pub fn terminals_per_leaf(&self) -> u32 {
        self.s
    }

    /// Routers per group (leaves then spines).
    pub fn routers_per_group(&self) -> u32 {
        self.l + self.s
    }

    /// Group, and Leaf(j) / Spine(m) role of a router.
    fn coords(&self, r: RouterId) -> (u32, Role) {
        let g = r.0 / self.routers_per_group();
        let j = r.0 % self.routers_per_group();
        if j < self.l {
            (g, Role::Leaf(j))
        } else {
            (g, Role::Spine(j - self.l))
        }
    }

    fn leaf(&self, g: u32, j: u32) -> RouterId {
        RouterId(g * self.routers_per_group() + j)
    }

    fn spine(&self, g: u32, m: u32) -> RouterId {
        RouterId(g * self.routers_per_group() + self.l + m)
    }

    /// Destination leaf coordinates of a terminal.
    fn leaf_of(&self, n: NodeId) -> (u32, u32) {
        let leaf = n.0 / self.s;
        (leaf / self.l, leaf % self.l)
    }

    /// Palm-tree group offset (`1..a`) of global index `k`.
    fn offset(&self, k: u32) -> u32 {
        (k % (self.a - 1)) + 1
    }

    /// Reverse global index of `k`, or None when unwired.
    fn reverse_global(&self, k: u32) -> Option<u32> {
        let o = self.offset(k);
        let q = k / (self.a - 1);
        let back = q * (self.a - 1) + (self.a - 1 - o);
        (back < self.s * self.h).then_some(back)
    }

    /// The lowest-indexed global port of spine `(g, m)` wired toward
    /// group `gd`, if it has one.
    fn global_toward(&self, g: u32, m: u32, gd: u32) -> Option<Port> {
        for j in 0..self.h {
            let k = m * self.h + j;
            if (g + self.offset(k)) % self.a == gd && self.reverse_global(k).is_some() {
                return Some(Port((self.l + j) as u8));
            }
        }
        None
    }

    /// Round-0 gateway spine for `g → gd` traffic (always wired).
    fn gateway_spine(&self, g: u32, gd: u32) -> u32 {
        debug_assert_ne!(g, gd);
        let o = (gd + self.a - g) % self.a;
        (o - 1) / self.h
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    Leaf(u32),
    Spine(u32),
}

impl Topology for Megafly {
    fn num_terminals(&self) -> usize {
        (self.a * self.l * self.s) as usize
    }

    fn num_routers(&self) -> usize {
        (self.a * self.routers_per_group()) as usize
    }

    fn num_ports(&self, r: RouterId) -> usize {
        match self.coords(r).1 {
            Role::Leaf(_) => (self.s + self.s) as usize,
            Role::Spine(_) => (self.l + self.h) as usize,
        }
    }

    fn router_of(&self, n: NodeId) -> RouterId {
        let (g, j) = self.leaf_of(n);
        self.leaf(g, j)
    }

    fn terminal_port(&self, n: NodeId) -> Port {
        Port((n.0 % self.s) as u8)
    }

    fn neighbor(&self, r: RouterId, p: Port) -> Option<Endpoint> {
        let (g, role) = self.coords(r);
        let pi = p.0 as u32;
        match role {
            Role::Leaf(j) => {
                if pi < self.s {
                    return Some(Endpoint::Terminal(NodeId((g * self.l + j) * self.s + pi)));
                }
                if pi < self.s + self.s {
                    return Some(Endpoint::Router(self.spine(g, pi - self.s), Port(j as u8)));
                }
                None
            }
            Role::Spine(m) => {
                if pi < self.l {
                    return Some(Endpoint::Router(self.leaf(g, pi), Port((self.s + m) as u8)));
                }
                if pi < self.l + self.h {
                    let k = m * self.h + (pi - self.l);
                    let back = self.reverse_global(k)?;
                    let d = (g + self.offset(k)) % self.a;
                    return Some(Endpoint::Router(
                        self.spine(d, back / self.h),
                        Port((self.l + back % self.h) as u8),
                    ));
                }
                None
            }
        }
    }

    fn minimal_port(&self, r: RouterId, dst: NodeId) -> Port {
        let (g, role) = self.coords(r);
        let (gd, jd) = self.leaf_of(dst);
        match role {
            Role::Leaf(j) => {
                if g == gd && j == jd {
                    return self.terminal_port(dst);
                }
                if g == gd {
                    // Spread intra-group ascents by destination, like
                    // the fat tree's d-mod-k upward digit.
                    return Port((self.s + dst.0 % self.s) as u8);
                }
                Port((self.s + self.gateway_spine(g, gd)) as u8)
            }
            Role::Spine(m) => {
                if g == gd {
                    return Port(jd as u8);
                }
                // Any global toward the destination group keeps the
                // route minimal; a spine with none (reachable only via
                // non-minimal descriptors) drains through leaf 0.
                self.global_toward(g, m, gd).unwrap_or(Port(0))
            }
        }
    }

    fn minimal_candidates(&self, r: RouterId, dst: NodeId, out: &mut Vec<Port>) {
        out.clear();
        let (g, role) = self.coords(r);
        let (gd, jd) = self.leaf_of(dst);
        match role {
            Role::Leaf(j) => {
                if g == gd && j == jd {
                    out.push(self.terminal_port(dst));
                } else if g == gd {
                    // Any spine bridges two leaves of one group.
                    out.extend((0..self.s).map(|m| Port((self.s + m) as u8)));
                } else {
                    // Any spine holding a global link toward the
                    // destination group gives a 3-hop route.
                    out.extend((0..self.s).filter_map(|m| {
                        self.global_toward(g, m, gd)
                            .map(|_| Port((self.s + m) as u8))
                    }));
                }
            }
            Role::Spine(m) => {
                if g == gd {
                    out.push(Port(jd as u8));
                } else if self.global_toward(g, m, gd).is_some() {
                    out.extend((0..self.h).filter_map(|jj| {
                        let k = m * self.h + jj;
                        ((g + self.offset(k)) % self.a == gd && self.reverse_global(k).is_some())
                            .then_some(Port((self.l + jj) as u8))
                    }));
                } else {
                    out.extend((0..self.l).map(|jj| Port(jj as u8)));
                }
            }
        }
        debug_assert!(!out.is_empty());
    }

    fn distance(&self, a: NodeId, b: NodeId) -> u32 {
        let (g, j) = self.leaf_of(a);
        let (gd, jd) = self.leaf_of(b);
        if (g, j) == (gd, jd) {
            0
        } else if g == gd {
            2
        } else {
            3
        }
    }

    fn link_class(&self, r: RouterId, p: Port) -> u8 {
        match self.coords(r).1 {
            Role::Leaf(_) => {
                if (p.0 as u32) < self.s {
                    LINK_CLASS_SERVER
                } else {
                    LINK_CLASS_LOCAL
                }
            }
            Role::Spine(_) => {
                if (p.0 as u32) < self.l {
                    LINK_CLASS_LOCAL
                } else {
                    LINK_CLASS_GLOBAL
                }
            }
        }
    }

    fn label(&self) -> String {
        format!("megafly {}x{}+{}x{}", self.a, self.l, self.s, self.h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shapes() -> Vec<Megafly> {
        vec![
            Megafly::new(5, 2, 2, 2), // canonical: G = 4 = a-1
            Megafly::new(3, 2, 1, 2), // single spine per group
            Megafly::new(4, 1, 3, 1), // G = 3 = a-1, skinny leaves
            Megafly::new(2, 2, 2, 1), // two groups, partial rounds
        ]
    }

    #[test]
    fn sizes_add_up() {
        let m = Megafly::new(5, 2, 2, 2);
        assert_eq!(m.num_routers(), 20);
        assert_eq!(m.num_terminals(), 20);
        assert_eq!(m.num_ports(RouterId(0)), 4); // leaf: 2 terminals + 2 ups
        assert_eq!(m.num_ports(RouterId(2)), 4); // spine: 2 downs + 2 globals
    }

    #[test]
    fn links_are_symmetric() {
        for m in shapes() {
            for r in 0..m.num_routers() as u32 {
                for p in 0..m.num_ports(RouterId(r)) as u8 {
                    if let Some(Endpoint::Router(nr, np)) = m.neighbor(RouterId(r), Port(p)) {
                        assert_eq!(
                            m.neighbor(nr, np),
                            Some(Endpoint::Router(RouterId(r), Port(p))),
                            "{}: asymmetric wire at r{r} p{p}",
                            m.label()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn link_classes_are_symmetric_across_wires() {
        for m in shapes() {
            for r in 0..m.num_routers() as u32 {
                for p in 0..m.num_ports(RouterId(r)) as u8 {
                    if let Some(Endpoint::Router(nr, np)) = m.neighbor(RouterId(r), Port(p)) {
                        assert_eq!(
                            m.link_class(RouterId(r), Port(p)),
                            m.link_class(nr, np),
                            "{}: class mismatch at r{r} p{p}",
                            m.label()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn minimal_route_reaches_every_destination_in_distance_hops() {
        for m in shapes() {
            for s in 0..m.num_terminals() as u32 {
                for t in 0..m.num_terminals() as u32 {
                    let (src, dst) = (NodeId(s), NodeId(t));
                    let mut r = m.router_of(src);
                    let mut hops = 0u32;
                    while r != m.router_of(dst) {
                        let p = m.minimal_port(r, dst);
                        match m.neighbor(r, p) {
                            Some(Endpoint::Router(nr, _)) => r = nr,
                            other => panic!("{}: dead end {other:?}", m.label()),
                        }
                        hops += 1;
                        assert!(hops <= 3, "{}: minimal route too long", m.label());
                    }
                    assert_eq!(hops, m.distance(src, dst), "{}: {s}->{t}", m.label());
                    assert_eq!(
                        m.neighbor(r, m.minimal_port(r, dst)),
                        Some(Endpoint::Terminal(dst))
                    );
                }
            }
        }
    }

    #[test]
    fn every_minimal_candidate_preserves_the_distance() {
        for m in shapes() {
            let mut cands = Vec::new();
            for s in 0..m.num_terminals() as u32 {
                for t in 0..m.num_terminals() as u32 {
                    let (src, dst) = (NodeId(s), NodeId(t));
                    let r = m.router_of(src);
                    if r == m.router_of(dst) {
                        continue;
                    }
                    let d = m.distance(src, dst);
                    m.minimal_candidates(r, dst, &mut cands);
                    assert!(!cands.is_empty());
                    for &p in &cands {
                        // Walk greedily after the candidate hop: total
                        // hops must still equal the minimal distance.
                        let Some(Endpoint::Router(mut at, _)) = m.neighbor(r, p) else {
                            panic!("{}: candidate into a terminal", m.label());
                        };
                        let mut hops = 1;
                        while at != m.router_of(dst) {
                            match m.neighbor(at, m.minimal_port(at, dst)) {
                                Some(Endpoint::Router(nr, _)) => at = nr,
                                other => panic!("{}: dead end {other:?}", m.label()),
                            }
                            hops += 1;
                            assert!(hops <= 4);
                        }
                        assert_eq!(hops, d, "{}: candidate {p:?} for {s}->{t}", m.label());
                    }
                }
            }
        }
    }
}
