//! 2-D mesh topology (§2.1.1, "direct orthogonal networks").
//!
//! One router per terminal; routers at the border have fewer router-to-
//! router links (a mesh, not a torus — "external nodes are not
//! interconnected"). Deterministic minimal routing is dimension-order
//! (X then Y), the classic DOR scheme.

use crate::ids::{Endpoint, NodeId, Port, RouterId};
use crate::{Topology, LINK_CLASS_GLOBAL, LINK_CLASS_LOCAL, LINK_CLASS_SERVER};

/// Mesh port layout: 0=east(+x) 1=west(−x) 2=north(+y) 3=south(−y)
/// 4=terminal.
pub const EAST: Port = Port(0);
/// West (−x) port.
pub const WEST: Port = Port(1);
/// North (+y) port.
pub const NORTH: Port = Port(2);
/// South (−y) port.
pub const SOUTH: Port = Port(3);
/// Terminal-facing port.
pub const TERMINAL: Port = Port(4);

/// A `w × h` 2-D mesh with one terminal per router.
#[derive(Debug, Clone)]
pub struct Mesh2D {
    w: u32,
    h: u32,
    /// Rows per board; 0 means the whole mesh is one board. Vertical
    /// links that cross a board boundary are long inter-board wires
    /// ([`LINK_CLASS_GLOBAL`]); everything else router-to-router is a
    /// backplane trace ([`LINK_CLASS_LOCAL`]).
    board_h: u32,
}

impl Mesh2D {
    /// Build a `w × h` mesh. Both dimensions must be at least 1.
    pub fn new(w: u32, h: u32) -> Self {
        assert!(w >= 1 && h >= 1, "mesh dimensions must be positive");
        Self { w, h, board_h: 0 }
    }

    /// Build a `w × h` mesh packaged as stacked boards of `board_h`
    /// rows each. Routing and geometry are identical to [`Mesh2D::new`];
    /// only [`Topology::link_class`] changes — vertical links between
    /// row `board_h·i − 1` and row `board_h·i` become
    /// [`LINK_CLASS_GLOBAL`] inter-board wires.
    pub fn with_boards(w: u32, h: u32, board_h: u32) -> Self {
        assert!(w >= 1 && h >= 1, "mesh dimensions must be positive");
        assert!(board_h >= 1, "board height must be positive");
        Self { w, h, board_h }
    }

    /// Rows per board (0 = single board).
    pub fn board_height(&self) -> u32 {
        self.board_h
    }

    /// Does the vertical link between rows `y` and `y + 1` cross a
    /// board boundary?
    fn board_cut(&self, y: u32) -> bool {
        self.board_h > 0 && (y + 1).is_multiple_of(self.board_h)
    }

    /// Mesh width.
    pub fn width(&self) -> u32 {
        self.w
    }

    /// Mesh height.
    pub fn height(&self) -> u32 {
        self.h
    }

    /// Router coordinates.
    pub fn coords(&self, r: RouterId) -> (u32, u32) {
        (r.0 % self.w, r.0 / self.w)
    }

    /// Router at coordinates.
    pub fn at(&self, x: u32, y: u32) -> RouterId {
        debug_assert!(x < self.w && y < self.h);
        RouterId(y * self.w + x)
    }

    /// Terminal node at coordinates (same index space as routers).
    pub fn node_at(&self, x: u32, y: u32) -> NodeId {
        NodeId(self.at(x, y).0)
    }

    /// All terminals whose router is exactly `d` hops (Manhattan) from
    /// the router of `center` — the "intermediate node rings" of Fig 3.6.
    pub fn ring(&self, center: NodeId, d: u32) -> Vec<NodeId> {
        let (cx, cy) = self.coords(self.router_of(center));
        let mut out = Vec::new();
        let (cx, cy) = (cx as i64, cy as i64);
        for y in 0..self.h as i64 {
            for x in 0..self.w as i64 {
                if (x - cx).unsigned_abs() + (y - cy).unsigned_abs() == d as u64 {
                    out.push(self.node_at(x as u32, y as u32));
                }
            }
        }
        out
    }
}

impl Topology for Mesh2D {
    fn num_terminals(&self) -> usize {
        (self.w * self.h) as usize
    }

    fn num_routers(&self) -> usize {
        (self.w * self.h) as usize
    }

    fn num_ports(&self, _r: RouterId) -> usize {
        5
    }

    fn router_of(&self, n: NodeId) -> RouterId {
        debug_assert!((n.0 as usize) < self.num_terminals());
        RouterId(n.0)
    }

    fn terminal_port(&self, _n: NodeId) -> Port {
        TERMINAL
    }

    fn neighbor(&self, r: RouterId, p: Port) -> Option<Endpoint> {
        let (x, y) = self.coords(r);
        match p {
            EAST if x + 1 < self.w => Some(Endpoint::Router(self.at(x + 1, y), WEST)),
            WEST if x > 0 => Some(Endpoint::Router(self.at(x - 1, y), EAST)),
            NORTH if y + 1 < self.h => Some(Endpoint::Router(self.at(x, y + 1), SOUTH)),
            SOUTH if y > 0 => Some(Endpoint::Router(self.at(x, y - 1), NORTH)),
            TERMINAL => Some(Endpoint::Terminal(NodeId(r.0))),
            _ => None,
        }
    }

    fn minimal_port(&self, r: RouterId, dst: NodeId) -> Port {
        let (x, y) = self.coords(r);
        let (dx, dy) = self.coords(self.router_of(dst));
        // Dimension-order: correct X fully, then Y, then deliver.
        if dx > x {
            EAST
        } else if dx < x {
            WEST
        } else if dy > y {
            NORTH
        } else if dy < y {
            SOUTH
        } else {
            TERMINAL
        }
    }

    fn minimal_candidates(&self, r: RouterId, dst: NodeId, out: &mut Vec<Port>) {
        out.clear();
        let (x, y) = self.coords(r);
        let (dx, dy) = self.coords(self.router_of(dst));
        if dx > x {
            out.push(EAST);
        } else if dx < x {
            out.push(WEST);
        }
        if dy > y {
            out.push(NORTH);
        } else if dy < y {
            out.push(SOUTH);
        }
        if out.is_empty() {
            out.push(TERMINAL);
        }
    }

    fn distance(&self, a: NodeId, b: NodeId) -> u32 {
        let (ax, ay) = self.coords(self.router_of(a));
        let (bx, by) = self.coords(self.router_of(b));
        ax.abs_diff(bx) + ay.abs_diff(by)
    }

    fn link_class(&self, r: RouterId, p: Port) -> u8 {
        let (_, y) = self.coords(r);
        match p {
            TERMINAL => LINK_CLASS_SERVER,
            // The wire spans rows (y, y+1) going north and (y-1, y)
            // going south; both sides of one physical link agree.
            NORTH if self.board_cut(y) => LINK_CLASS_GLOBAL,
            SOUTH if y > 0 && self.board_cut(y - 1) => LINK_CLASS_GLOBAL,
            _ => LINK_CLASS_LOCAL,
        }
    }

    fn label(&self) -> String {
        if self.board_h > 0 {
            format!("mesh {}x{} boards/{}", self.w, self.h, self.board_h)
        } else {
            format!("mesh {}x{}", self.w, self.h)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_8x8() {
        let m = Mesh2D::new(8, 8);
        assert_eq!(m.num_routers(), 64);
        assert_eq!(m.num_terminals(), 64);
        assert_eq!(m.coords(RouterId(0)), (0, 0));
        assert_eq!(m.coords(RouterId(63)), (7, 7));
        assert_eq!(m.at(3, 2), RouterId(19));
    }

    #[test]
    fn border_links_absent() {
        let m = Mesh2D::new(4, 4);
        assert!(m.neighbor(m.at(0, 0), WEST).is_none());
        assert!(m.neighbor(m.at(0, 0), SOUTH).is_none());
        assert!(m.neighbor(m.at(3, 3), EAST).is_none());
        assert!(m.neighbor(m.at(3, 3), NORTH).is_none());
    }

    #[test]
    fn links_are_symmetric() {
        let m = Mesh2D::new(5, 3);
        for r in 0..m.num_routers() as u32 {
            for p in 0..4u8 {
                if let Some(Endpoint::Router(nr, np)) = m.neighbor(RouterId(r), Port(p)) {
                    assert_eq!(
                        m.neighbor(nr, np),
                        Some(Endpoint::Router(RouterId(r), Port(p))),
                        "link ({r},{p}) not symmetric"
                    );
                }
            }
        }
    }

    #[test]
    fn dor_routes_x_first() {
        let m = Mesh2D::new(8, 8);
        // From (0,0) to node at (3,2): go east while x differs.
        let dst = m.node_at(3, 2);
        assert_eq!(m.minimal_port(m.at(0, 0), dst), EAST);
        assert_eq!(m.minimal_port(m.at(3, 0), dst), NORTH);
        assert_eq!(m.minimal_port(m.at(3, 2), dst), TERMINAL);
    }

    #[test]
    fn dor_reaches_every_destination() {
        let m = Mesh2D::new(6, 6);
        for s in 0..36u32 {
            for d in 0..36u32 {
                let mut r = m.router_of(NodeId(s));
                let mut hops = 0;
                loop {
                    let p = m.minimal_port(r, NodeId(d));
                    if p == TERMINAL {
                        assert_eq!(r, m.router_of(NodeId(d)));
                        break;
                    }
                    match m.neighbor(r, p) {
                        Some(Endpoint::Router(nr, _)) => r = nr,
                        other => panic!("bad hop {other:?}"),
                    }
                    hops += 1;
                    assert!(hops <= 12, "non-minimal DOR walk");
                }
                assert_eq!(hops, m.distance(NodeId(s), NodeId(d)));
            }
        }
    }

    #[test]
    fn candidates_are_minimal_and_nonempty() {
        let m = Mesh2D::new(8, 8);
        let mut c = Vec::new();
        let dst = m.node_at(5, 5);
        m.minimal_candidates(m.at(2, 2), dst, &mut c);
        assert_eq!(c, vec![EAST, NORTH]);
        m.minimal_candidates(m.at(5, 5), dst, &mut c);
        assert_eq!(c, vec![TERMINAL]);
    }

    #[test]
    fn ring_distance_one_has_up_to_four_nodes() {
        let m = Mesh2D::new(8, 8);
        let center = m.node_at(4, 4);
        assert_eq!(m.ring(center, 1).len(), 4);
        // Corner node only has two 1-hop neighbors.
        assert_eq!(m.ring(m.node_at(0, 0), 1).len(), 2);
        // Ring 0 is the node itself.
        assert_eq!(m.ring(center, 0), vec![center]);
    }

    #[test]
    fn link_classes_mark_board_cuts_symmetrically() {
        let m = Mesh2D::with_boards(4, 8, 2);
        // Inside a board: local.
        assert_eq!(m.link_class(m.at(1, 0), NORTH), LINK_CLASS_LOCAL);
        // Crossing rows 1→2 (boundary after every 2 rows): global.
        assert_eq!(m.link_class(m.at(1, 1), NORTH), LINK_CLASS_GLOBAL);
        assert_eq!(m.link_class(m.at(1, 2), SOUTH), LINK_CLASS_GLOBAL);
        // Horizontal links never cross boards.
        assert_eq!(m.link_class(m.at(1, 1), EAST), LINK_CLASS_LOCAL);
        assert_eq!(m.link_class(m.at(1, 1), TERMINAL), LINK_CLASS_SERVER);
        // The class is a property of the wire: both endpoints agree.
        for r in 0..m.num_routers() as u32 {
            for p in 0..4u8 {
                if let Some(Endpoint::Router(nr, np)) = m.neighbor(RouterId(r), Port(p)) {
                    assert_eq!(
                        m.link_class(RouterId(r), Port(p)),
                        m.link_class(nr, np),
                        "asymmetric class on ({r},{p})"
                    );
                }
            }
        }
        // A plain mesh is one board: every router link is local.
        let plain = Mesh2D::new(4, 4);
        for r in 0..plain.num_routers() as u32 {
            for p in 0..4u8 {
                assert_eq!(plain.link_class(RouterId(r), Port(p)), LINK_CLASS_LOCAL);
            }
        }
    }

    #[test]
    fn distance_is_manhattan() {
        let m = Mesh2D::new(8, 8);
        assert_eq!(m.distance(m.node_at(0, 0), m.node_at(7, 7)), 14);
        assert_eq!(m.distance(m.node_at(3, 4), m.node_at(3, 4)), 0);
    }
}
