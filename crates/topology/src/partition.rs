//! Space partitioning for conservative-parallel execution.
//!
//! A [`ShardPlan`] assigns every router — and, by co-location, every
//! terminal NIC — to one of `K` shards. The sharded fabric driver gives
//! each shard its own event calendar and advances all shards in
//! bulk-synchronous windows bounded by the minimum cross-shard link
//! latency (the *lookahead*), so the partition quality has two axes:
//!
//! * **balance** — shards should own similar router counts, and
//! * **cut size** — fewer cross-shard links mean less boundary traffic
//!   staged at each window barrier.
//!
//! The plans here are the classic ones for the two thesis topologies:
//! contiguous strips along the longer dimension of a mesh (cutting the
//! short dimension minimizes the cut), and pod-per-shard on a k-ary
//! n-tree (a pod — the set of non-root switches sharing their topmost
//! word digit, plus the terminals below them — has internal links only,
//! so the cut is confined to the root level). Every other topology goes
//! through the general graph partitioner: contract the maximal
//! LOCAL-class-connected components (never cut a short wire), then grow
//! balanced blocks greedily over the component quotient graph. Because
//! local components stay whole, every cross-shard link is GLOBAL class
//! by construction — the cut is made entirely of long wires, so the
//! conservative window driver earns the widest lookahead the topology
//! offers (on a dragonfly: the optical inter-group links).

use crate::ids::{Endpoint, NodeId, Port, RouterId};
use crate::{AnyTopology, Topology, LINK_CLASS_LOCAL};

/// A static assignment of routers and NICs to `K` execution shards.
///
/// Invariant: a terminal always lands on the shard of its attachment
/// router, so NIC↔router traffic (injection, delivery, NIC credits)
/// never crosses a shard boundary — only router↔router links can.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    shards: u32,
    router_shard: Vec<u32>,
    node_shard: Vec<u32>,
}

/// Row boundaries of `shards` contiguous strips over `h` rows:
/// `bounds[0] = 0`, `bounds[shards] = h`, and rows `bounds[i] ..
/// bounds[i+1]` belong to shard `i`. Without boards the interior
/// boundaries are `ceil(i·h/K)` — exactly the classic `y·K/h`
/// assignment. With `board_h > 0` each interior boundary snaps to the
/// nearest board seam, trading a little balance for a cut made of long
/// (wide-lookahead) wires. A seam is admissible only strictly between
/// the (already snapped) previous boundary and the *raw* next
/// boundary, so a snap can move a boundary at most within its own
/// cell: snapping never cascades, never crosses the following raw
/// boundary, and never empties a strip the raw assignment kept
/// non-empty. Boundaries with no admissible seam stay where they were.
fn strip_bounds(h: u32, shards: u32, board_h: u32) -> Vec<u32> {
    let k = shards as u64;
    let mut bounds = Vec::with_capacity(shards as usize + 1);
    bounds.push(0u32);
    for i in 1..k {
        bounds.push(((i * h as u64).div_ceil(k)) as u32);
    }
    bounds.push(h);
    if board_h > 0 && board_h < h {
        let raw = bounds.clone();
        for i in 1..shards as usize {
            let prev = bounds[i - 1];
            let r = raw[i];
            let lo = r / board_h * board_h;
            let hi = lo + board_h;
            let valid = |c: u32| c > prev && c < raw[i + 1];
            bounds[i] = match (valid(lo), valid(hi)) {
                (true, true) => {
                    if r - lo <= hi - r {
                        lo
                    } else {
                        hi
                    }
                }
                (true, false) => lo,
                (false, true) => hi,
                // No admissible seam: keep the raw boundary. Monotone by
                // construction — a snapped `prev` is < raw[i], and a raw
                // `prev` is ≤ raw[i] (equal only where the raw strips
                // already had empty ones, i.e. K > h).
                (false, false) => r,
            };
        }
    }
    bounds
}

/// Shard of row `y` under `strip_bounds` output.
fn row_shard(bounds: &[u32], y: u32) -> u32 {
    bounds[1..bounds.len() - 1]
        .iter()
        .filter(|&&b| y >= b)
        .count() as u32
}

/// General graph partition: contract the maximal LOCAL-connected router
/// components, then grow `shards` balanced blocks greedily over the
/// component quotient graph (lowest-id seed, lowest-id unassigned
/// neighbor next — fully deterministic). Components are never split, so
/// every cross-shard link has a non-LOCAL class; on the dragonfly
/// family the components are exactly the groups and the cut is all
/// GLOBAL wires.
fn general_partition(topo: &AnyTopology, shards: u32) -> Vec<u32> {
    let nr = topo.num_routers();
    // 1. Maximal LOCAL-connected components, discovered in ascending
    // router order (component ids are therefore deterministic).
    const UNSET: usize = usize::MAX;
    let mut comp = vec![UNSET; nr];
    let mut num_comps = 0usize;
    for seed in 0..nr {
        if comp[seed] != UNSET {
            continue;
        }
        let id = num_comps;
        num_comps += 1;
        comp[seed] = id;
        let mut stack = vec![seed];
        while let Some(cur) = stack.pop() {
            let rid = RouterId(cur as u32);
            for p in 0..topo.num_ports(rid) {
                let port = Port(p as u8);
                if topo.link_class(rid, port) != LINK_CLASS_LOCAL {
                    continue;
                }
                if let Some(Endpoint::Router(next, _)) = topo.neighbor(rid, port) {
                    if comp[next.idx()] == UNSET {
                        comp[next.idx()] = id;
                        stack.push(next.idx());
                    }
                }
            }
        }
    }
    // 2. Quotient adjacency (ordered sets keep growth deterministic).
    let mut adj = vec![std::collections::BTreeSet::new(); num_comps];
    for r in 0..nr {
        let rid = RouterId(r as u32);
        for p in 0..topo.num_ports(rid) {
            if let Some(Endpoint::Router(next, _)) = topo.neighbor(rid, Port(p as u8)) {
                let (a, b) = (comp[r], comp[next.idx()]);
                if a != b {
                    adj[a].insert(b);
                }
            }
        }
    }
    // 3. Greedy balanced growth: each shard takes
    // ceil(remaining / remaining_shards) components, BFS-grown from the
    // lowest unassigned component so blocks stay connected whenever the
    // quotient graph allows it (the palm tree's round-0 sweep makes it
    // complete, so they always do there).
    let mut comp_shard = vec![u32::MAX; num_comps];
    let mut assigned = 0usize;
    for s in 0..shards {
        let remaining = num_comps - assigned;
        if remaining == 0 {
            break;
        }
        let target = remaining.div_ceil((shards - s) as usize);
        let mut block: Vec<usize> = Vec::new();
        while block.len() < target {
            let next = if block.is_empty() {
                (0..num_comps).find(|&c| comp_shard[c] == u32::MAX)
            } else {
                block
                    .iter()
                    .flat_map(|&c| adj[c].iter().copied())
                    .filter(|&c| comp_shard[c] == u32::MAX)
                    .min()
                    // Disconnected quotient graph: jump to the lowest
                    // unassigned component rather than under-filling.
                    .or_else(|| (0..num_comps).find(|&c| comp_shard[c] == u32::MAX))
            };
            let Some(c) = next else { break };
            comp_shard[c] = s;
            block.push(c);
            assigned += 1;
        }
    }
    (0..nr).map(|r| comp_shard[comp[r]]).collect()
}

impl ShardPlan {
    /// Partition `topo` into `shards` shards. `shards` must be ≥ 1;
    /// plans with more shards than rows/pods leave the excess shards
    /// empty (legal, just useless).
    pub fn new(topo: &AnyTopology, shards: u32) -> Self {
        assert!(shards >= 1, "shard count must be at least 1");
        let router_shard: Vec<u32> = match topo {
            AnyTopology::Mesh(m) => {
                // Contiguous strips across the longer dimension: cutting
                // perpendicular to it yields the smaller cut (w or h
                // links per boundary instead of the longer side). On a
                // boarded mesh the row boundaries additionally snap to
                // the nearest board seam, so the cut crosses only the
                // long inter-board wires and the conservative window
                // driver gets the widest safe lookahead.
                let (w, h) = (m.width(), m.height());
                if h >= w {
                    let bounds = strip_bounds(h, shards, m.board_height());
                    (0..topo.num_routers() as u32)
                        .map(|r| {
                            let (_, y) = m.coords(RouterId(r));
                            row_shard(&bounds, y)
                        })
                        .collect()
                } else {
                    // Column strips: every vertical cut crosses
                    // horizontal links, which are never board seams —
                    // nothing to snap to.
                    (0..topo.num_routers() as u32)
                        .map(|r| {
                            let (x, _) = m.coords(RouterId(r));
                            (x as u64 * shards as u64 / w as u64) as u32
                        })
                        .collect()
                }
            }
            AnyTopology::Tree(t) => {
                // Pod-per-shard: every non-root switch keeps its topmost
                // word digit fixed across all its up/down links below
                // the root level, so switches sharing that digit form a
                // pod whose internal links never cross shards. Root
                // switches belong to no pod; spread them round-robin.
                let k = t.arity();
                let n = t.depth();
                (0..topo.num_routers() as u32)
                    .map(|r| {
                        let rid = RouterId(r);
                        let (level, word) = (t.level(rid), t.word(rid));
                        if n >= 2 && level < n - 1 {
                            let pod = word / k.pow(n - 2);
                            (pod as u64 * shards as u64 / k as u64) as u32
                        } else {
                            word % shards
                        }
                    })
                    .collect()
            }
            // Dragonfly, megafly and any future graph topology: the
            // general component-contraction partitioner.
            _ => general_partition(topo, shards),
        };
        let node_shard = (0..topo.num_terminals() as u32)
            .map(|nd| router_shard[topo.router_of(NodeId(nd)).idx()])
            .collect();
        Self {
            shards,
            router_shard,
            node_shard,
        }
    }

    /// Number of shards in the plan.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// Shard owning router `r`.
    #[inline]
    pub fn shard_of_router(&self, r: RouterId) -> u32 {
        self.router_shard[r.idx()]
    }

    /// Shard owning terminal `n`'s NIC (= the shard of its router).
    #[inline]
    pub fn shard_of_node(&self, n: NodeId) -> u32 {
        self.node_shard[n.idx()]
    }

    /// Routers owned by shard `s`.
    pub fn routers_of(&self, s: u32) -> impl Iterator<Item = RouterId> + '_ {
        self.router_shard
            .iter()
            .enumerate()
            .filter(move |&(_, &sh)| sh == s)
            .map(|(i, _)| RouterId(i as u32))
    }

    /// Every directed router→router link whose endpoints live on
    /// different shards: `(src router, src port, dst router)`.
    pub fn cross_links(&self, topo: &AnyTopology) -> Vec<(RouterId, Port, RouterId)> {
        let mut out = Vec::new();
        for r in 0..topo.num_routers() as u32 {
            let rid = RouterId(r);
            for p in 0..topo.num_ports(rid) as u8 {
                if let Some(Endpoint::Router(nr, _)) = topo.neighbor(rid, Port(p)) {
                    if self.router_shard[rid.idx()] != self.router_shard[nr.idx()] {
                        out.push((rid, Port(p), nr));
                    }
                }
            }
        }
        out
    }

    /// The cross-shard links that are currently *live* under `faults`.
    /// The sharded driver's lookahead must be recomputed over this set
    /// on every fault event: a dead cut link carries no events, so it
    /// cannot bound the window — and a recovered one must bound it
    /// again.
    pub fn live_cross_links(
        &self,
        topo: &AnyTopology,
        faults: &crate::faults::FaultState,
    ) -> Vec<(RouterId, Port, RouterId)> {
        let mut links = self.cross_links(topo);
        links.retain(|&(r, p, _)| !faults.link_dead(r, p));
        links
    }

    /// Routers per shard (balance diagnostics).
    pub fn shard_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.shards as usize];
        for &s in &self.router_shard {
            sizes[s as usize] += 1;
        }
        sizes
    }

    /// Terminal NICs per shard (balance diagnostics — NIC count tracks
    /// injection/delivery work, router count tracks forwarding work).
    pub fn nic_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.shards as usize];
        for &s in &self.node_shard {
            counts[s as usize] += 1;
        }
        counts
    }

    /// Directed cross-shard link count (the cut, both directions).
    pub fn cut_size(&self, topo: &AnyTopology) -> usize {
        self.cross_links(topo).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultEvent, FaultState};
    use crate::{KAryNTree, Mesh2D};

    #[test]
    fn single_shard_owns_everything() {
        for topo in [AnyTopology::mesh8x8(), AnyTopology::fat_tree_64()] {
            let plan = ShardPlan::new(&topo, 1);
            assert!((0..topo.num_routers() as u32).all(|r| plan.shard_of_router(RouterId(r)) == 0));
            assert!(plan.cross_links(&topo).is_empty());
        }
    }

    #[test]
    fn mesh_strips_are_contiguous_and_balanced() {
        let topo = AnyTopology::mesh8x8();
        let m = Mesh2D::new(8, 8);
        for k in [2u32, 4] {
            let plan = ShardPlan::new(&topo, k);
            // Strips along y: shard is monotone in the row index and
            // equal across a row.
            for y in 0..8u32 {
                let row_shard = plan.shard_of_router(m.at(0, y));
                for x in 0..8u32 {
                    assert_eq!(plan.shard_of_router(m.at(x, y)), row_shard);
                }
                assert_eq!(row_shard, y * k / 8);
            }
            let sizes = plan.shard_sizes();
            assert!(sizes.iter().all(|&s| s == 64 / k as usize), "{sizes:?}");
            // Cut: (k-1) boundaries × 8 columns × 2 directions.
            assert_eq!(plan.cross_links(&topo).len() as u32, (k - 1) * 8 * 2);
        }
    }

    #[test]
    fn boarded_mesh_boundaries_snap_to_seams() {
        use crate::Topology;
        // 4×12 mesh in 4-row boards, 3 shards: raw boundaries at rows
        // 4 and 8 are already seams; every cut link must be global.
        let topo = AnyTopology::Mesh(Mesh2D::with_boards(4, 12, 4));
        let plan = ShardPlan::new(&topo, 3);
        for (r, p, _) in plan.cross_links(&topo) {
            assert_eq!(
                topo.link_class(r, p),
                crate::LINK_CLASS_GLOBAL,
                "cut crosses a short wire at {r}:{p}"
            );
        }
        // Non-divisor shard count: raw boundaries (rows 6 and... ) snap
        // to the nearest seams, still monotone, all routers assigned.
        let plan = ShardPlan::new(&topo, 2);
        for (r, p, _) in plan.cross_links(&topo) {
            assert_eq!(topo.link_class(r, p), crate::LINK_CLASS_GLOBAL);
        }
        let sizes = plan.shard_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 48);
        assert!(sizes.iter().all(|&s| s > 0), "{sizes:?}");
        // Snapping never changes the unboarded plan.
        let flat = AnyTopology::Mesh(Mesh2D::new(4, 12));
        let a = ShardPlan::new(&flat, 3);
        let b = ShardPlan::new(&AnyTopology::Mesh(Mesh2D::with_boards(4, 12, 12)), 3);
        for r in 0..48u32 {
            // board_h == h has a single board and no interior seam, so
            // boundaries stay raw.
            assert_eq!(
                a.shard_of_router(RouterId(r)),
                b.shard_of_router(RouterId(r))
            );
        }
    }

    #[test]
    fn seam_snapping_never_cascades_or_empties_strips() {
        // h=10, board_h=4, K=5: raw boundaries 2/4/6/8. An unbounded
        // snap used to walk 2→4 and then cascade (4→8, 6→8, 8→8),
        // collapsing two strips to empty. The cell-bounded snap keeps
        // 2 and 6 raw (their nearest seams belong to neighbors' cells)
        // and leaves 4 and 8 on their seams.
        assert_eq!(strip_bounds(10, 5, 4), vec![0, 2, 4, 6, 8, 10]);
        // Same shape at the plan level: every strip stays non-empty and
        // the boundaries stay strictly monotone whenever K ≤ h.
        for (h, k, board_h) in [(10, 5, 4), (12, 6, 4), (10, 3, 4), (17, 4, 5)] {
            let bounds = strip_bounds(h, k, board_h);
            assert_eq!(bounds.len() as u32, k + 1);
            assert!(
                bounds.windows(2).all(|w| w[0] < w[1]),
                "h={h} k={k} board_h={board_h}: empty strip in {bounds:?}"
            );
            // Cell-bounded: bounds[i] never reaches the next raw one.
            let raw = strip_bounds(h, k, 0);
            for i in 1..k as usize {
                assert!(
                    bounds[i] < raw[i + 1],
                    "h={h} k={k} board_h={board_h}: boundary {i} overshot"
                );
            }
        }
    }

    #[test]
    fn strip_bounds_reproduce_classic_assignment_without_boards() {
        for h in [5u32, 8, 12, 17] {
            for k in [1u32, 2, 3, 4, 5, 8] {
                let bounds = strip_bounds(h, k, 0);
                for y in 0..h {
                    assert_eq!(
                        row_shard(&bounds, y),
                        (y as u64 * k as u64 / h as u64) as u32,
                        "h={h} k={k} y={y}"
                    );
                }
            }
        }
    }

    #[test]
    fn tree_pods_keep_non_root_links_internal() {
        let topo = AnyTopology::fat_tree_64();
        let t = KAryNTree::new(4, 3);
        let plan = ShardPlan::new(&topo, 4);
        // Every cross link touches the root level.
        for (a, _, b) in plan.cross_links(&topo) {
            assert!(
                t.level(a) == t.depth() - 1 || t.level(b) == t.depth() - 1,
                "non-root cross link {a} -> {b}"
            );
        }
        // All shards own routers, and terminals follow their leaf switch.
        assert!(plan.shard_sizes().iter().all(|&s| s > 0));
        for nd in 0..64u32 {
            let n = NodeId(nd);
            assert_eq!(
                plan.shard_of_node(n),
                plan.shard_of_router(topo.router_of(n))
            );
        }
    }

    #[test]
    fn general_partition_never_cuts_a_group() {
        for topo in [AnyTopology::dragonfly72(), AnyTopology::megafly20()] {
            for k in [2u32, 3, 4] {
                let plan = ShardPlan::new(&topo, k);
                // The cut is all-GLOBAL: local components stay whole, so
                // the sharded driver's lookahead comes from long wires.
                let links = plan.cross_links(&topo);
                assert!(!links.is_empty(), "{} k={k}", topo.label());
                for (r, p, _) in links {
                    assert_eq!(
                        topo.link_class(r, p),
                        crate::LINK_CLASS_GLOBAL,
                        "{} k={k}: cut crosses a short wire at {r}:{p}",
                        topo.label()
                    );
                }
                // Balanced and exhaustive: no empty shard (K ≤ groups),
                // sizes within one component of each other.
                let sizes = plan.shard_sizes();
                assert!(sizes.iter().all(|&s| s > 0), "{sizes:?}");
                assert_eq!(sizes.iter().sum::<usize>(), topo.num_routers());
            }
        }
    }

    #[test]
    fn nics_are_colocated_with_their_router_on_every_plan() {
        for topo in [
            AnyTopology::Mesh(Mesh2D::new(5, 3)),
            AnyTopology::Mesh(Mesh2D::new(3, 9)),
            AnyTopology::Tree(KAryNTree::new(2, 5)),
            AnyTopology::Tree(KAryNTree::new(8, 2)),
            AnyTopology::dragonfly72(),
            AnyTopology::megafly20(),
        ] {
            for k in 1..=5u32 {
                let plan = ShardPlan::new(&topo, k);
                for nd in 0..topo.num_terminals() as u32 {
                    let n = NodeId(nd);
                    assert_eq!(
                        plan.shard_of_node(n),
                        plan.shard_of_router(topo.router_of(n)),
                        "{} k={k} node {nd}",
                        topo.label()
                    );
                }
                // Every router maps to a valid shard.
                for r in 0..topo.num_routers() as u32 {
                    assert!(plan.shard_of_router(RouterId(r)) < k);
                }
            }
        }
    }

    #[test]
    fn live_cross_links_exclude_failed_cut_wires() {
        let topo = AnyTopology::mesh8x8();
        let plan = ShardPlan::new(&topo, 2);
        let all = plan.cross_links(&topo);
        let mut faults = FaultState::new(&topo);
        assert_eq!(plan.live_cross_links(&topo, &faults), all);
        // Kill one cut wire: both directions leave the live set.
        let (r, p, nr) = all[0];
        faults.apply(&topo, &FaultEvent::LinkDown { router: r, port: p });
        let live = plan.live_cross_links(&topo, &faults);
        assert_eq!(live.len(), all.len() - 2, "both directions excluded");
        assert!(live.iter().all(|&(a, _, b)| !(a == r && b == nr)));
        assert!(live.iter().all(|&(a, _, b)| !(a == nr && b == r)));
        // Recovery restores the full cut.
        faults.apply(&topo, &FaultEvent::LinkUp { router: r, port: p });
        assert_eq!(plan.live_cross_links(&topo, &faults), all);
    }

    #[test]
    fn router_down_on_the_boundary_shrinks_the_live_cut() {
        let topo = AnyTopology::mesh8x8();
        let m = Mesh2D::new(8, 8);
        let plan = ShardPlan::new(&topo, 2);
        // Row 3 / row 4 is the 2-shard boundary; kill a boundary router.
        let r = m.at(2, 3);
        assert_ne!(
            plan.shard_of_router(r),
            plan.shard_of_router(m.at(2, 4)),
            "r sits on the cut"
        );
        let mut faults = FaultState::new(&topo);
        faults.apply(&topo, &FaultEvent::RouterDown { router: r });
        let live = plan.live_cross_links(&topo, &faults);
        assert_eq!(live.len(), plan.cross_links(&topo).len() - 2);
        assert!(live.iter().all(|&(a, _, b)| a != r && b != r));
        // A whole-cut failure leaves no live cross links at all.
        for x in 0..8 {
            faults.apply(&topo, &FaultEvent::RouterDown { router: m.at(x, 3) });
        }
        assert!(plan.live_cross_links(&topo, &faults).is_empty());
    }

    #[test]
    fn interior_faults_leave_the_cut_alone() {
        let topo = AnyTopology::fat_tree_64();
        let plan = ShardPlan::new(&topo, 4);
        let t = KAryNTree::new(4, 3);
        let mut faults = FaultState::new(&topo);
        // A leaf-level up link is pod-internal on the pod-per-shard
        // plan, so the live cut is unchanged.
        assert_eq!(t.level(RouterId(0)), 0);
        faults.apply(
            &topo,
            &FaultEvent::LinkDown {
                router: RouterId(0),
                port: Port(4),
            },
        );
        assert_eq!(
            plan.live_cross_links(&topo, &faults),
            plan.cross_links(&topo)
        );
    }

    #[test]
    fn cross_links_come_in_symmetric_pairs() {
        let topo = AnyTopology::fat_tree_64();
        let plan = ShardPlan::new(&topo, 2);
        let links = plan.cross_links(&topo);
        assert!(!links.is_empty());
        for &(a, _, b) in &links {
            assert!(
                links.iter().any(|&(x, _, y)| x == b && y == a),
                "missing reverse of {a} -> {b}"
            );
        }
    }
}
