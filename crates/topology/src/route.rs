//! Path descriptors and per-hop routing.
//!
//! A packet carries a fixed-size routing header (§3.3.1, Fig 3.16):
//! source, up to two intermediate nodes, destination, and a `Header_id`
//! that points at the segment currently being traversed. Every segment is
//! routed with the topology's minimal static routing; when a packet
//! reaches the router of the intermediate node named by `Header_id`, the
//! header id advances to the next target (the HDP module of Fig 3.19).
//!
//! On the fat-tree, alternative paths are instead encoded as an NCA
//! *seed* — each distinct seed selects one distinct minimal path through
//! a different nearest common ancestor (§2.1.5, §3.2.3).

use crate::ids::{NodeId, Port, RouterId};
use crate::mesh::{self, Mesh2D};
use crate::{AnyTopology, Topology};

/// How a packet's route is chosen. Fits in a machine word; packets carry
/// it by value (no per-packet allocation on the hot path).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PathDescriptor {
    /// The topology's deterministic minimal route.
    Minimal,
    /// Mesh only: dimension-order route, `yx = true` corrects Y first.
    MeshOrder {
        /// Route the Y dimension before X.
        yx: bool,
    },
    /// Multi-step path via two intermediate nodes (Fig 3.7). Valid on
    /// any topology: each segment runs the topology's deterministic
    /// minimal routing, so the walk is well-defined wherever
    /// `minimal_port` is (mesh MSPs, dragonfly/megafly detours through
    /// another group, Valiant's random-intermediate misroute).
    Msp {
        /// Intermediate node near the source (IN1).
        in1: NodeId,
        /// Intermediate node near the destination (IN2).
        in2: NodeId,
    },
    /// Fat-tree minimal path through the NCA selected by `seed`.
    TreeSeed {
        /// Base-k digits of the seed pick the up port at each level.
        seed: u32,
    },
    /// Fully adaptive per-hop routing: during the fat-tree's ascending
    /// phase the *router* picks the least-occupied minimal up port
    /// (deadlock-free on up*/down* trees; falls back to the
    /// deterministic route on the mesh, where unrestricted adaptivity
    /// would need extra escape channels).
    AdaptiveUp,
}

/// Mutable per-packet routing state: the descriptor plus the `Header_id`
/// field (which multi-step segment is active).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteState {
    /// The chosen path.
    pub descriptor: PathDescriptor,
    /// Active segment: 0 → heading to IN1, 1 → IN2, 2 → destination.
    pub header_id: u8,
}

impl RouteState {
    /// Fresh state for a descriptor (multi-step paths start at IN1).
    pub fn new(descriptor: PathDescriptor) -> Self {
        let header_id = match descriptor {
            PathDescriptor::Msp { .. } => 0,
            _ => 2,
        };
        Self {
            descriptor,
            header_id,
        }
    }

    /// The terminal the packet is currently being routed toward.
    pub fn current_target(&self, dst: NodeId) -> NodeId {
        match (self.descriptor, self.header_id) {
            (PathDescriptor::Msp { in1, .. }, 0) => in1,
            (PathDescriptor::Msp { in2, .. }, 1) => in2,
            _ => dst,
        }
    }
}

/// Compute the output port at router `r` for a packet heading to `dst`
/// with routing state `state`, advancing `Header_id` when an intermediate
/// router is reached. Returns the port (possibly the terminal port when
/// `r` is the destination's router).
pub fn next_port(topo: &AnyTopology, r: RouterId, dst: NodeId, state: &mut RouteState) -> Port {
    match (topo, state.descriptor) {
        (_, PathDescriptor::Minimal) => topo.minimal_port(r, dst),
        (AnyTopology::Mesh(m), PathDescriptor::MeshOrder { yx }) => {
            if yx {
                yx_port(m, r, dst)
            } else {
                m.minimal_port(r, dst)
            }
        }
        (_, PathDescriptor::Msp { .. }) => {
            // Advance the header past any intermediate routers we've
            // reached (IN1 may share the source's router, etc.).
            while state.header_id < 2 {
                let target = state.current_target(dst);
                if topo.router_of(target) == r {
                    state.header_id += 1;
                } else {
                    break;
                }
            }
            topo.minimal_port(r, state.current_target(dst))
        }
        (AnyTopology::Tree(t), PathDescriptor::TreeSeed { seed }) => t.port_with_seed(r, dst, seed),
        // The fabric overrides the ascending choice with queue-state
        // information; this is the fallback (deterministic minimal).
        (_, PathDescriptor::AdaptiveUp) => topo.minimal_port(r, dst),
        // Descriptor/topology mismatches fall back to minimal routing —
        // a misconfiguration, flagged in debug builds.
        (_, d) => {
            debug_assert!(false, "descriptor {d:?} not valid for {}", topo.label());
            topo.minimal_port(r, dst)
        }
    }
}

/// Y-first dimension-order routing on the mesh.
pub(crate) fn yx_port(m: &Mesh2D, r: RouterId, dst: NodeId) -> Port {
    let (x, y) = m.coords(r);
    let (dx, dy) = m.coords(m.router_of(dst));
    if dy > y {
        mesh::NORTH
    } else if dy < y {
        mesh::SOUTH
    } else if dx > x {
        mesh::EAST
    } else if dx < x {
        mesh::WEST
    } else {
        mesh::TERMINAL
    }
}

/// Walk a full route from `src` to `dst`, returning the sequence of
/// routers traversed (used by tests, path-length accounting and the
/// path-distribution analysis of §4.5.1).
///
/// Returns `Err` with the partial walk if the route exceeds `limit` hops
/// — which would indicate a routing bug (livelock, §3.3).
pub fn walk_route(
    topo: &AnyTopology,
    src: NodeId,
    dst: NodeId,
    descriptor: PathDescriptor,
    limit: usize,
) -> Result<Vec<RouterId>, Vec<RouterId>> {
    let mut state = RouteState::new(descriptor);
    let mut r = topo.router_of(src);
    let mut path = vec![r];
    loop {
        let p = next_port(topo, r, dst, &mut state);
        match topo.neighbor(r, p) {
            Some(crate::ids::Endpoint::Terminal(n)) if n == dst => return Ok(path),
            Some(crate::ids::Endpoint::Router(nr, _)) => {
                r = nr;
                path.push(r);
                if path.len() > limit {
                    return Err(path);
                }
            }
            _ => return Err(path),
        }
    }
}

/// Router-hop length of a route (`Eq. 3.2`: the sum of segment lengths).
pub fn route_len(
    topo: &AnyTopology,
    src: NodeId,
    dst: NodeId,
    descriptor: PathDescriptor,
) -> Option<u32> {
    walk_route(topo, src, dst, descriptor, 4 * (topo.num_routers() + 1))
        .ok()
        .map(|p| p.len() as u32 - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{KAryNTree, Mesh2D};

    fn mesh() -> AnyTopology {
        AnyTopology::Mesh(Mesh2D::new(8, 8))
    }

    fn tree() -> AnyTopology {
        AnyTopology::Tree(KAryNTree::new(4, 3))
    }

    #[test]
    fn minimal_walk_matches_distance() {
        for topo in [mesh(), tree()] {
            for (s, d) in [(0u32, 63u32), (5, 5), (12, 40), (63, 0)] {
                let len = route_len(&topo, NodeId(s), NodeId(d), PathDescriptor::Minimal).unwrap();
                assert_eq!(len, topo.distance(NodeId(s), NodeId(d)), "{s}->{d}");
            }
        }
    }

    #[test]
    fn msp_visits_both_intermediates() {
        let topo = mesh();
        let m = match &topo {
            AnyTopology::Mesh(m) => m.clone(),
            _ => unreachable!(),
        };
        let src = m.node_at(0, 0);
        let dst = m.node_at(7, 0);
        let in1 = m.node_at(0, 1);
        let in2 = m.node_at(7, 1);
        let walk = walk_route(&topo, src, dst, PathDescriptor::Msp { in1, in2 }, 64).unwrap();
        assert!(walk.contains(&m.router_of(in1)));
        assert!(walk.contains(&m.router_of(in2)));
        // Length = sum of DOR segments (Eq. 3.2): 1 + 7 + 1 = 9.
        assert_eq!(walk.len() - 1, 9);
    }

    #[test]
    fn msp_with_degenerate_intermediates_is_minimal() {
        let topo = mesh();
        // IN1 = source, IN2 = destination: the MSP collapses onto the
        // original path.
        let (src, dst) = (NodeId(0), NodeId(7));
        let len = route_len(&topo, src, dst, PathDescriptor::Msp { in1: src, in2: dst }).unwrap();
        assert_eq!(len, topo.distance(src, dst));
    }

    #[test]
    fn yx_routing_takes_other_corner() {
        let topo = mesh();
        let m = match &topo {
            AnyTopology::Mesh(m) => m.clone(),
            _ => unreachable!(),
        };
        let src = m.node_at(0, 0);
        let dst = m.node_at(3, 3);
        let xy = walk_route(&topo, src, dst, PathDescriptor::MeshOrder { yx: false }, 64).unwrap();
        let yx = walk_route(&topo, src, dst, PathDescriptor::MeshOrder { yx: true }, 64).unwrap();
        assert_eq!(xy.len(), yx.len()); // both minimal
        assert!(xy.contains(&m.at(3, 0)));
        assert!(yx.contains(&m.at(0, 3)));
    }

    #[test]
    fn tree_seed_walks_are_minimal_and_distinct() {
        let topo = tree();
        let (src, dst) = (NodeId(0), NodeId(63));
        let mut distinct = std::collections::HashSet::new();
        for seed in 0..16 {
            let walk = walk_route(&topo, src, dst, PathDescriptor::TreeSeed { seed }, 64).unwrap();
            assert_eq!(walk.len() - 1, topo.distance(src, dst) as usize);
            distinct.insert(walk);
        }
        assert_eq!(distinct.len(), 16);
    }

    #[test]
    fn msp_detours_through_another_dragonfly_group() {
        // MSPs are graph-generic now: a detour terminal in a third
        // group turns the single-global minimal route into a two-global
        // multi-step path — the path diversity UGAL/DRB lean on.
        for (topo, per_group) in [
            (AnyTopology::dragonfly72(), 8u32),
            (AnyTopology::megafly20(), 4u32),
        ] {
            let (src, dst) = (NodeId(0), NodeId(per_group)); // groups 0 -> 1
            let mid = NodeId(2 * per_group); // detour via group 2
            let d = PathDescriptor::Msp { in1: mid, in2: dst };
            let walk = walk_route(&topo, src, dst, d, 64).unwrap();
            assert!(walk.contains(&topo.router_of(mid)), "{}", topo.label());
            let len = walk.len() as u32 - 1;
            let min = topo.distance(src, dst);
            assert!(len >= min, "{}: msp shorter than minimal?", topo.label());
            assert_eq!(
                len,
                topo.distance(src, mid) + topo.distance(mid, dst),
                "{}: Eq 3.2 segment-sum length",
                topo.label()
            );
        }
    }

    #[test]
    fn route_state_targets() {
        let d = PathDescriptor::Msp {
            in1: NodeId(1),
            in2: NodeId(2),
        };
        let mut s = RouteState::new(d);
        assert_eq!(s.current_target(NodeId(9)), NodeId(1));
        s.header_id = 1;
        assert_eq!(s.current_target(NodeId(9)), NodeId(2));
        s.header_id = 2;
        assert_eq!(s.current_target(NodeId(9)), NodeId(9));
        // Non-MSP descriptors always target the destination.
        let s2 = RouteState::new(PathDescriptor::Minimal);
        assert_eq!(s2.header_id, 2);
        assert_eq!(s2.current_target(NodeId(9)), NodeId(9));
    }
}
