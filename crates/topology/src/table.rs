//! Memoized routing: flat per-(router, destination) next-hop tables.
//!
//! Static routes never change during a run, yet the fabric recomputes
//! them per hop — coordinate branching on the mesh, repeated base-k
//! digit divisions on the fat-tree. A [`RouteTable`] is built once per
//! run and answers every [`next_port`]-equivalent query with one or two
//! array loads. MSP segments reuse the minimal table (each segment *is*
//! a minimal route toward the segment target, §3.3.1), and fat-tree
//! seed routes split into a tabled descending port plus a single cached
//! digit extraction for the ascending choice.
//!
//! `table_matches_next_port` in the tests proves the lookup path agrees
//! with [`next_port`] on every (router, destination, descriptor).

use crate::ids::{Endpoint, NodeId, Port, RouterId};
use crate::route::{self, PathDescriptor, RouteState};
use crate::{AnyTopology, Topology};

/// Sentinel in the fat-tree down-port table: the router is not an
/// ancestor of the destination, so the packet is still ascending.
const ASCENDING: u8 = u8::MAX;

/// Fat-tree specific lookup state.
#[derive(Debug, Clone)]
struct TreeTable {
    /// Arity (k): up ports are `k..2k`.
    k: u32,
    /// `down[r * nodes + dst]`: descending port when `r` is an ancestor
    /// of `dst`, [`ASCENDING`] otherwise.
    down: Vec<u8>,
    /// `k^level(r)` per router — turns the per-hop `digit(seed, level)`
    /// division chain into one load, one divide, one modulo.
    pow_level: Vec<u32>,
}

/// Per-run memo of every static routing decision.
#[derive(Debug, Clone)]
pub struct RouteTable {
    nodes: usize,
    /// `minimal[r * nodes + dst]`: the deterministic minimal port.
    minimal: Vec<Port>,
    /// Mesh only: the Y-first dimension-order port.
    yx: Option<Vec<Port>>,
    tree: Option<TreeTable>,
    /// `neighbors[r * max_ports + p]`: the tabled [`Topology::neighbor`]
    /// — the fabric chases a link per hop for credits and handoffs, and
    /// the fat-tree answer costs a base-k digit chain every time.
    neighbors: Vec<Option<Endpoint>>,
    /// Stride of `neighbors`: the widest router's port count.
    max_ports: usize,
    /// `(router, port)` where each terminal's NIC attaches.
    nic: Vec<(RouterId, Port)>,
}

impl RouteTable {
    /// Precompute the tables for `topo`. Cost is one `minimal_port`
    /// evaluation per (router, destination) pair — microseconds for the
    /// thesis-scale networks, paid once per run.
    pub fn build(topo: &AnyTopology) -> Self {
        let nodes = topo.num_terminals();
        let nr = topo.num_routers();
        let mut minimal = Vec::with_capacity(nr * nodes);
        for r in 0..nr {
            for d in 0..nodes {
                minimal.push(topo.minimal_port(RouterId(r as u32), NodeId(d as u32)));
            }
        }
        let yx = match topo {
            AnyTopology::Mesh(m) => {
                let mut t = Vec::with_capacity(nr * nodes);
                for r in 0..nr {
                    for d in 0..nodes {
                        t.push(route::yx_port(m, RouterId(r as u32), NodeId(d as u32)));
                    }
                }
                Some(t)
            }
            _ => None,
        };
        let tree = match topo {
            AnyTopology::Tree(t) => {
                let mut down = Vec::with_capacity(nr * nodes);
                for r in 0..nr {
                    let rid = RouterId(r as u32);
                    for d in 0..nodes {
                        let dst = NodeId(d as u32);
                        down.push(if t.is_ancestor(rid, dst) {
                            t.minimal_port(rid, dst).0
                        } else {
                            ASCENDING
                        });
                    }
                }
                let pow_level = (0..nr)
                    .map(|r| t.arity().pow(t.level(RouterId(r as u32))))
                    .collect();
                Some(TreeTable {
                    k: t.arity(),
                    down,
                    pow_level,
                })
            }
            _ => None,
        };
        let max_ports = (0..nr)
            .map(|r| topo.num_ports(RouterId(r as u32)))
            .max()
            .unwrap_or(0);
        let mut neighbors = vec![None; nr * max_ports];
        for r in 0..nr {
            let rid = RouterId(r as u32);
            for p in 0..topo.num_ports(rid) {
                neighbors[r * max_ports + p] = topo.neighbor(rid, Port(p as u8));
            }
        }
        let nic = (0..nodes)
            .map(|n| {
                let node = NodeId(n as u32);
                (topo.router_of(node), topo.terminal_port(node))
            })
            .collect();
        Self {
            nodes,
            minimal,
            yx,
            tree,
            neighbors,
            max_ports,
            nic,
        }
    }

    /// The tabled far end of `r`'s port `p` ([`Topology::neighbor`]).
    #[inline]
    pub fn neighbor(&self, r: RouterId, p: Port) -> Option<Endpoint> {
        self.neighbors[r.idx() * self.max_ports + p.idx()]
    }

    /// The tabled `(router_of, terminal_port)` NIC attachment of `n`.
    #[inline]
    pub fn nic_attach(&self, n: NodeId) -> (RouterId, Port) {
        self.nic[n.idx()]
    }

    /// The tabled deterministic minimal port from `r` toward `dst`.
    #[inline]
    pub fn minimal(&self, r: RouterId, dst: NodeId) -> Port {
        self.minimal[r.idx() * self.nodes + dst.idx()]
    }

    /// Memoized equivalent of `Topology::minimal_candidates`: every
    /// minimal output port from `r` toward `dst`, written into `out`.
    #[inline]
    pub fn minimal_candidates(
        &self,
        topo: &AnyTopology,
        r: RouterId,
        dst: NodeId,
        out: &mut Vec<Port>,
    ) {
        if let Some(t) = &self.tree {
            out.clear();
            let d = t.down[r.idx() * self.nodes + dst.idx()];
            if d != ASCENDING {
                out.push(Port(d));
            } else {
                // Every up port is minimal during the ascending phase.
                for c in 0..t.k {
                    out.push(Port((t.k + c) as u8));
                }
            }
        } else {
            topo.minimal_candidates(r, dst, out);
        }
    }

    /// Memoized equivalent of [`next_port`]: the output port at router
    /// `r` for a packet heading to `dst` with routing state `state`,
    /// advancing `Header_id` exactly as the uncached path does.
    #[inline]
    pub fn next_port(
        &self,
        topo: &AnyTopology,
        r: RouterId,
        dst: NodeId,
        state: &mut RouteState,
    ) -> Port {
        match (topo, state.descriptor) {
            (_, PathDescriptor::Minimal) | (_, PathDescriptor::AdaptiveUp) => self.minimal(r, dst),
            (AnyTopology::Mesh(_), PathDescriptor::MeshOrder { yx }) => {
                if yx {
                    self.yx.as_ref().expect("mesh table")[r.idx() * self.nodes + dst.idx()]
                } else {
                    self.minimal(r, dst)
                }
            }
            (_, PathDescriptor::Msp { .. }) => {
                // Topology-generic, like the uncached path: the NIC
                // table doubles as a memoized `router_of`.
                while state.header_id < 2 {
                    let target = state.current_target(dst);
                    if self.nic[target.idx()].0 == r {
                        state.header_id += 1;
                    } else {
                        break;
                    }
                }
                self.minimal(r, state.current_target(dst))
            }
            (AnyTopology::Tree(_), PathDescriptor::TreeSeed { seed }) => {
                let t = self.tree.as_ref().expect("tree table");
                let d = t.down[r.idx() * self.nodes + dst.idx()];
                if d != ASCENDING {
                    Port(d)
                } else {
                    let c = (seed / t.pow_level[r.idx()]) % t.k;
                    Port((t.k + c) as u8)
                }
            }
            // Mismatched descriptor/topology combinations: defer to the
            // uncached path so the debug assertion fires in one place.
            _ => route::next_port(topo, r, dst, state),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::next_port;
    use crate::{KAryNTree, Mesh2D};

    fn topologies() -> Vec<AnyTopology> {
        vec![
            AnyTopology::Mesh(Mesh2D::new(8, 8)),
            AnyTopology::Mesh(Mesh2D::new(4, 3)),
            AnyTopology::Tree(KAryNTree::new(4, 3)),
            AnyTopology::Tree(KAryNTree::new(2, 5)),
            AnyTopology::dragonfly72(),
            AnyTopology::megafly20(),
        ]
    }

    /// Every (router, destination, descriptor) answered by the table
    /// matches the uncached computation, including `Header_id` effects.
    #[test]
    fn table_matches_next_port() {
        for topo in topologies() {
            let table = RouteTable::build(&topo);
            let mut descriptors = vec![PathDescriptor::Minimal, PathDescriptor::AdaptiveUp];
            // MSPs are topology-generic; exercise a couple of fixed
            // intermediate pairs everywhere (including degenerate ones).
            let last = NodeId(topo.num_terminals() as u32 - 1);
            descriptors.push(PathDescriptor::Msp {
                in1: NodeId(1),
                in2: last,
            });
            descriptors.push(PathDescriptor::Msp {
                in1: last,
                in2: NodeId(0),
            });
            match &topo {
                AnyTopology::Mesh(_) => {
                    descriptors.push(PathDescriptor::MeshOrder { yx: false });
                    descriptors.push(PathDescriptor::MeshOrder { yx: true });
                }
                AnyTopology::Tree(_) => {
                    for seed in [0u32, 1, 2, 3, 5, 7, 11, 15, 16, 31, 63, 255] {
                        descriptors.push(PathDescriptor::TreeSeed { seed });
                    }
                }
                _ => {}
            }
            for r in 0..topo.num_routers() {
                for d in 0..topo.num_terminals() {
                    let (rid, dst) = (RouterId(r as u32), NodeId(d as u32));
                    for &desc in &descriptors {
                        let mut a = RouteState::new(desc);
                        let mut b = a;
                        assert_eq!(
                            next_port(&topo, rid, dst, &mut a),
                            table.next_port(&topo, rid, dst, &mut b),
                            "{} r{r} d{d} {desc:?}",
                            topo.label()
                        );
                        assert_eq!(a, b, "state divergence");
                    }
                    let (mut ca, mut cb) = (Vec::new(), Vec::new());
                    topo.minimal_candidates(rid, dst, &mut ca);
                    table.minimal_candidates(&topo, rid, dst, &mut cb);
                    assert_eq!(ca, cb, "{} candidates r{r} d{d}", topo.label());
                }
            }
        }
    }

    /// The neighbor and NIC-attachment tables agree with the uncached
    /// topology answers on every slot.
    #[test]
    fn table_matches_neighbor_and_nic() {
        for topo in topologies() {
            let table = RouteTable::build(&topo);
            for r in 0..topo.num_routers() {
                let rid = RouterId(r as u32);
                for p in 0..topo.num_ports(rid) {
                    let port = Port(p as u8);
                    assert_eq!(
                        table.neighbor(rid, port),
                        topo.neighbor(rid, port),
                        "{} r{r} p{p}",
                        topo.label()
                    );
                }
            }
            for n in 0..topo.num_terminals() {
                let node = NodeId(n as u32);
                assert_eq!(
                    table.nic_attach(node),
                    (topo.router_of(node), topo.terminal_port(node)),
                    "{} n{n}",
                    topo.label()
                );
            }
        }
    }

    /// MSP walks (which mutate `Header_id` along the way) agree hop by
    /// hop between the cached and uncached paths.
    #[test]
    fn msp_walks_match_hop_by_hop() {
        let topo = AnyTopology::Mesh(Mesh2D::new(8, 8));
        let table = RouteTable::build(&topo);
        let m = match &topo {
            AnyTopology::Mesh(m) => m.clone(),
            _ => unreachable!(),
        };
        let cases = [
            (
                m.node_at(0, 0),
                m.node_at(7, 0),
                m.node_at(0, 1),
                m.node_at(7, 1),
            ),
            (
                m.node_at(1, 2),
                m.node_at(6, 5),
                m.node_at(3, 0),
                m.node_at(6, 7),
            ),
            (
                m.node_at(0, 0),
                m.node_at(7, 7),
                m.node_at(0, 0),
                m.node_at(7, 7),
            ),
            (
                m.node_at(5, 5),
                m.node_at(5, 5),
                m.node_at(2, 2),
                m.node_at(3, 3),
            ),
        ];
        for (src, dst, in1, in2) in cases {
            let desc = PathDescriptor::Msp { in1, in2 };
            let mut a = RouteState::new(desc);
            let mut b = a;
            let mut r = topo.router_of(src);
            for _ in 0..64 {
                let pa = next_port(&topo, r, dst, &mut a);
                let pb = table.next_port(&topo, r, dst, &mut b);
                assert_eq!(pa, pb, "{src:?}->{dst:?} at {r:?}");
                assert_eq!(a, b);
                match topo.neighbor(r, pa) {
                    Some(crate::ids::Endpoint::Router(nr, _)) => r = nr,
                    _ => break,
                }
            }
        }
    }
}
