//! Property-based tests of the topology invariants: routing validity,
//! minimality, link symmetry and alternative-path soundness for
//! arbitrary shapes and endpoint pairs.

use prdrb_topology::{
    route_len, walk_route, AltPathProvider, AnyTopology, Dragonfly, Endpoint, KAryNTree, Megafly,
    Mesh2D, NodeId, PathDescriptor, Port, RouterId, ShardPlan, Topology, LINK_CLASS_LOCAL,
};
use proptest::prelude::*;

fn mesh_strategy() -> impl Strategy<Value = AnyTopology> {
    (2u32..10, 2u32..10).prop_map(|(w, h)| AnyTopology::Mesh(Mesh2D::new(w, h)))
}

fn tree_strategy() -> impl Strategy<Value = AnyTopology> {
    prop_oneof![
        Just(AnyTopology::Tree(KAryNTree::new(2, 2))),
        Just(AnyTopology::Tree(KAryNTree::new(2, 4))),
        Just(AnyTopology::Tree(KAryNTree::new(3, 3))),
        Just(AnyTopology::Tree(KAryNTree::new(4, 3))),
    ]
}

fn dragonfly_strategy() -> impl Strategy<Value = AnyTopology> {
    // Clamp the group count to the palm-tree bound (G = r·h ≥ a-1)
    // instead of filtering, so every drawn tuple is a valid shape.
    (2u32..9, 1u32..5, 1u32..4)
        .prop_map(|(a, r, h)| AnyTopology::Dragonfly(Dragonfly::new(a.min(r * h + 1), r, h)))
}

fn megafly_strategy() -> impl Strategy<Value = AnyTopology> {
    (2u32..7, 1u32..4, 1u32..4, 1u32..4)
        .prop_map(|(a, l, s, h)| AnyTopology::Megafly(Megafly::new(a.min(s * h + 1), l, s, h)))
}

fn any_topology() -> impl Strategy<Value = AnyTopology> {
    prop_oneof![
        mesh_strategy(),
        tree_strategy(),
        dragonfly_strategy(),
        megafly_strategy()
    ]
}

/// Number of LOCAL-connected components (groups) of a dragonfly-family
/// topology — the granularity floor of the general partitioner.
fn group_count(topo: &AnyTopology) -> u32 {
    match topo {
        AnyTopology::Dragonfly(d) => d.groups(),
        AnyTopology::Megafly(m) => m.groups(),
        _ => unreachable!(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Minimal routing reaches every destination in exactly the
    /// topological distance.
    #[test]
    fn minimal_routes_are_minimal(topo in any_topology(), a in 0u32..4096, b in 0u32..4096) {
        let n = topo.num_terminals() as u32;
        let (src, dst) = (NodeId(a % n), NodeId(b % n));
        let len = route_len(&topo, src, dst, PathDescriptor::Minimal);
        prop_assert_eq!(len, Some(topo.distance(src, dst)));
    }

    /// Every link is symmetric: the neighbor's reverse port points back.
    #[test]
    fn links_are_symmetric(topo in any_topology()) {
        for r in 0..topo.num_routers() as u32 {
            let rid = RouterId(r);
            for p in 0..topo.num_ports(rid) as u8 {
                if let Some(Endpoint::Router(nr, np)) = topo.neighbor(rid, Port(p)) {
                    prop_assert_eq!(
                        topo.neighbor(nr, np),
                        Some(Endpoint::Router(rid, Port(p)))
                    );
                }
            }
        }
    }

    /// Every terminal attaches consistently: the terminal port of its
    /// router leads back to it.
    #[test]
    fn terminal_attachment_is_consistent(topo in any_topology()) {
        for t in 0..topo.num_terminals() as u32 {
            let n = NodeId(t);
            let r = topo.router_of(n);
            let p = topo.terminal_port(n);
            prop_assert_eq!(topo.neighbor(r, p), Some(Endpoint::Terminal(n)));
        }
    }

    /// Alternative paths are valid, distinct, bounded in length and
    /// start with the original path (livelock freedom, §3.3).
    #[test]
    fn alternative_paths_are_sound(
        topo in any_topology(),
        a in 0u32..4096,
        b in 0u32..4096,
        max in 1usize..8,
    ) {
        let n = topo.num_terminals() as u32;
        let (src, dst) = (NodeId(a % n), NodeId(b % n));
        let provider = AltPathProvider::new(&topo);
        let alts = provider.alternatives(src, dst, max);
        prop_assert!(!alts.is_empty());
        prop_assert!(alts.len() <= max.max(1));
        let dist = topo.distance(src, dst);
        let mut walks = std::collections::HashSet::new();
        for (i, d) in alts.iter().enumerate() {
            let walk = walk_route(&topo, src, dst, *d, 4 * topo.num_routers() + 8);
            prop_assert!(walk.is_ok(), "alt {i} failed to reach {dst} from {src}");
            let walk = walk.unwrap();
            // Bounded stretch: at most the minimal distance plus the
            // two ring detours of up to 2 hops each way.
            prop_assert!(walk.len() as u32 - 1 <= dist + 16, "alt {i} too long");
            if i == 0 {
                prop_assert_eq!(walk.len() as u32 - 1, dist, "original path not minimal");
            }
            prop_assert!(walks.insert(walk), "duplicate alternative");
        }
    }

    /// All tree seeds route minimally for any pair.
    #[test]
    fn all_tree_seeds_minimal(topo in tree_strategy(), a in 0u32..4096, b in 0u32..4096, seed in 0u32..64) {
        let n = topo.num_terminals() as u32;
        let (src, dst) = (NodeId(a % n), NodeId(b % n));
        let len = route_len(&topo, src, dst, PathDescriptor::TreeSeed { seed });
        prop_assert_eq!(len, Some(topo.distance(src, dst)));
    }

    /// Mesh XY and YX orders are both minimal.
    #[test]
    fn mesh_orders_minimal(topo in mesh_strategy(), a in 0u32..4096, b in 0u32..4096, yx in proptest::bool::ANY) {
        let n = topo.num_terminals() as u32;
        let (src, dst) = (NodeId(a % n), NodeId(b % n));
        let len = route_len(&topo, src, dst, PathDescriptor::MeshOrder { yx });
        prop_assert_eq!(len, Some(topo.distance(src, dst)));
    }

    /// The general graph partitioner never produces an empty shard or a
    /// disconnected block across random (a, r, h) dragonfly shapes and
    /// (a, l, s, h) megafly shapes, and its cut never crosses a short
    /// (LOCAL-class) wire.
    #[test]
    fn general_partition_blocks_are_nonempty_and_connected(
        topo in prop_oneof![dragonfly_strategy(), megafly_strategy()],
        shards in 1u32..7,
    ) {
        // More shards than groups cannot avoid empties (the contracted
        // components are the granularity floor); cap like the callers do.
        let k = shards.min(group_count(&topo));
        let plan = ShardPlan::new(&topo, k);
        let sizes = plan.shard_sizes();
        prop_assert_eq!(sizes.len(), k as usize);
        prop_assert!(sizes.iter().all(|&s| s > 0), "empty shard: {:?}", sizes);
        prop_assert_eq!(sizes.iter().sum::<usize>(), topo.num_routers());
        for (r, p, _) in plan.cross_links(&topo) {
            prop_assert_ne!(topo.link_class(r, p), LINK_CLASS_LOCAL);
        }
        // Every block is connected in the router graph restricted to
        // its own shard.
        for s in 0..k {
            let members: Vec<RouterId> = plan.routers_of(s).collect();
            prop_assert!(!members.is_empty());
            let mut reached = std::collections::HashSet::from([members[0]]);
            let mut stack = vec![members[0]];
            while let Some(r) = stack.pop() {
                for p in 0..topo.num_ports(r) as u8 {
                    if let Some(Endpoint::Router(nr, _)) = topo.neighbor(r, Port(p)) {
                        if plan.shard_of_router(nr) == s && reached.insert(nr) {
                            stack.push(nr);
                        }
                    }
                }
            }
            prop_assert_eq!(
                reached.len(),
                members.len(),
                "disconnected block on shard {} of {}",
                s,
                topo.label()
            );
        }
    }

    /// MSPs through arbitrary intermediate nodes always terminate.
    #[test]
    fn arbitrary_msps_terminate(
        topo in any_topology(),
        a in 0u32..4096,
        b in 0u32..4096,
        i1 in 0u32..4096,
        i2 in 0u32..4096,
    ) {
        let n = topo.num_terminals() as u32;
        let desc = PathDescriptor::Msp { in1: NodeId(i1 % n), in2: NodeId(i2 % n) };
        let walk = walk_route(&topo, NodeId(a % n), NodeId(b % n), desc, 8 * topo.num_routers());
        prop_assert!(walk.is_ok(), "MSP livelocked or got lost");
    }
}
