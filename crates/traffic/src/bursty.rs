//! Bursty traffic schedules (§2.2.3, Fig 2.6).
//!
//! HPC traffic alternates computation (low uniform background load) with
//! communication bursts. Two shapes from Fig 2.6:
//!
//! * **fixed-pattern bursts** (Fig 2.6a): every burst replays the same
//!   permutation — the repetitive case PR-DRB learns from;
//! * **variable-pattern bursts** (Fig 2.6b): the pattern changes each
//!   burst (task migration / data-dependent communication), the stress
//!   case where a predictive policy must not hurt.

use crate::patterns::TrafficPattern;
use prdrb_simcore::time::Time;

/// What a burst sends.
#[derive(Debug, Clone)]
pub enum BurstPattern {
    /// Every burst uses the same pattern (Fig 2.6a).
    Fixed(TrafficPattern),
    /// Burst `i` uses `patterns[i % len]` (Fig 2.6b).
    Cycling(Vec<TrafficPattern>),
}

/// A periodic bursty injection schedule.
#[derive(Debug, Clone)]
pub struct BurstSchedule {
    /// Background (computation-phase) injection rate in Mbps per node.
    pub low_mbps: f64,
    /// Burst (communication-phase) injection rate in Mbps per node.
    pub high_mbps: f64,
    /// Background traffic pattern (uniform noise in the evaluation).
    pub low_pattern: TrafficPattern,
    /// Burst traffic pattern(s).
    pub burst: BurstPattern,
    /// Burst duration.
    pub on_ns: Time,
    /// Gap between bursts.
    pub off_ns: Time,
    /// First burst start.
    pub start_ns: Time,
}

impl BurstSchedule {
    /// The repetitive-burst workload of the hot-spot evaluation
    /// (Table 4.2): uniform background plus periodic permutation bursts.
    pub fn repetitive(pattern: TrafficPattern, high_mbps: f64, on_ns: Time, off_ns: Time) -> Self {
        Self {
            low_mbps: high_mbps * 0.1,
            high_mbps,
            low_pattern: TrafficPattern::Uniform,
            burst: BurstPattern::Fixed(pattern),
            on_ns,
            off_ns,
            start_ns: 0,
        }
    }

    /// Continuous (non-bursty) injection at a fixed rate — the permanent
    /// permutation load of §4.6.3.
    pub fn continuous(pattern: TrafficPattern, mbps: f64) -> Self {
        Self {
            low_mbps: mbps,
            high_mbps: mbps,
            low_pattern: pattern.clone(),
            burst: BurstPattern::Fixed(pattern),
            on_ns: Time::MAX / 4,
            off_ns: 0,
            start_ns: 0,
        }
    }

    /// Which burst (if any) is active at `t`, and its index.
    pub fn burst_index(&self, t: Time) -> Option<u64> {
        if t < self.start_ns {
            return None;
        }
        let period = self.on_ns.saturating_add(self.off_ns);
        if period == 0 {
            return Some(0);
        }
        let since = t - self.start_ns;
        let idx = since / period;
        let into = since % period;
        (into < self.on_ns).then_some(idx)
    }

    /// Injection rate (Mbps) and pattern in force at time `t`.
    pub fn at(&self, t: Time) -> (f64, &TrafficPattern) {
        match self.burst_index(t) {
            None => (self.low_mbps, &self.low_pattern),
            Some(i) => {
                let p = match &self.burst {
                    BurstPattern::Fixed(p) => p,
                    BurstPattern::Cycling(ps) => &ps[(i as usize) % ps.len()],
                };
                (self.high_mbps, p)
            }
        }
    }

    /// Number of complete bursts that fit before `end`.
    pub fn bursts_before(&self, end: Time) -> u64 {
        let period = self.on_ns.saturating_add(self.off_ns);
        if period == 0 || end <= self.start_ns {
            return if end > self.start_ns { 1 } else { 0 };
        }
        (end - self.start_ns) / period
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched() -> BurstSchedule {
        BurstSchedule {
            low_mbps: 40.0,
            high_mbps: 400.0,
            low_pattern: TrafficPattern::Uniform,
            burst: BurstPattern::Fixed(TrafficPattern::Shuffle),
            on_ns: 1_000,
            off_ns: 3_000,
            start_ns: 500,
        }
    }

    #[test]
    fn burst_windows() {
        let s = sched();
        assert_eq!(s.burst_index(0), None, "before start");
        assert_eq!(s.burst_index(500), Some(0));
        assert_eq!(s.burst_index(1_499), Some(0));
        assert_eq!(s.burst_index(1_500), None, "gap");
        assert_eq!(s.burst_index(4_500), Some(1));
    }

    #[test]
    fn rates_and_patterns_switch() {
        let s = sched();
        let (r, p) = s.at(200);
        assert_eq!(r, 40.0);
        assert_eq!(p.label(), "uniform");
        let (r, p) = s.at(600);
        assert_eq!(r, 400.0);
        assert_eq!(p.label(), "shuffle");
    }

    #[test]
    fn cycling_patterns_change_per_burst() {
        let s = BurstSchedule {
            burst: BurstPattern::Cycling(vec![
                TrafficPattern::Shuffle,
                TrafficPattern::BitReversal,
            ]),
            ..sched()
        };
        assert_eq!(s.at(600).1.label(), "shuffle"); // burst 0
        assert_eq!(s.at(4_600).1.label(), "bit-reversal"); // burst 1
        assert_eq!(s.at(8_600).1.label(), "shuffle"); // burst 2 wraps
    }

    #[test]
    fn continuous_never_pauses() {
        let s = BurstSchedule::continuous(TrafficPattern::Transpose, 600.0);
        for t in [0u64, 1_000_000, 1_000_000_000] {
            let (r, p) = s.at(t);
            assert_eq!(r, 600.0);
            assert_eq!(p.label(), "transpose");
        }
    }

    #[test]
    fn repetitive_preset_has_low_background() {
        let s = BurstSchedule::repetitive(TrafficPattern::Shuffle, 400.0, 1_000, 1_000);
        assert!(s.low_mbps < s.high_mbps);
        assert_eq!(s.at(100).1.label(), "shuffle");
        assert_eq!(s.at(1_100).1.label(), "uniform");
    }

    #[test]
    fn bursts_before_counts_periods() {
        let s = sched();
        assert_eq!(s.bursts_before(500), 0);
        assert_eq!(s.bursts_before(4_501), 1);
        assert_eq!(s.bursts_before(12_500), 3);
    }
}
