//! MPI-style collective communication schedules (DESIGN §12).
//!
//! The evaluation's synthetic permutations exercise *spatial* structure;
//! collectives add the *temporal* structure of real applications — a
//! fixed sequence of communication rounds that repeats every iteration,
//! which is exactly the repetitive traffic the PR-DRB solution store is
//! built to learn. Two operations × two schedule shapes:
//!
//! * **all-to-all / ring** — rotation rounds: in round `k`, rank `i`
//!   sends its block for rank `(i + k) mod N`. `N − 1` rounds, one
//!   message per ordered pair.
//! * **all-to-all / tree** — recursive pairwise (XOR) exchange for
//!   power-of-two `N`: in round `k`, rank `i` exchanges with
//!   `i XOR 2^k` the blocks destined for the partner's half. `log2 N`
//!   rounds of `N/2`-size messages each way. Non-power-of-two rank
//!   counts fall back to the ring schedule (documented, asserted in
//!   tests) rather than emulating ghost ranks.
//! * **all-reduce / ring** — reduce-scatter then allgather: `2(N − 1)`
//!   rounds of `bytes / N` chunks around the ring. After round
//!   `N − 1 + r`, chunk ownership has rotated so every rank ends with
//!   the full reduced vector.
//! * **all-reduce / tree** — binomial reduce to rank 0 followed by a
//!   binomial broadcast: `2·ceil(log2 N)` rounds of full-vector
//!   messages.
//!
//! A schedule is *pure data* — `rounds()` returns who sends what to
//! whom, per round; the engine lowers it onto NIC attach points and the
//! trace player (Sends buffered, Recvs blocking), so the traffic crate
//! stays free of topology/engine dependencies. [`check_exactly_once`]
//! models the dataflow symbolically and is the oracle for the
//! schedule-correctness proptests.

/// Which collective operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectiveKind {
    /// Every rank sends a distinct block to every other rank.
    AllToAll,
    /// Every rank contributes a vector; all ranks end with the
    /// element-wise reduction of all contributions.
    AllReduce,
}

impl CollectiveKind {
    /// Stable label for artifacts and cache keys.
    pub fn label(self) -> &'static str {
        match self {
            CollectiveKind::AllToAll => "alltoall",
            CollectiveKind::AllReduce => "allreduce",
        }
    }
}

/// Which communication schedule realizes the collective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleShape {
    /// Ring / rotation schedule — `O(N)` rounds of small messages.
    Ring,
    /// Tree / recursive-halving schedule — `O(log N)` rounds of larger
    /// messages (XOR exchange for all-to-all, binomial for all-reduce).
    Tree,
}

impl ScheduleShape {
    /// Stable label for artifacts and cache keys.
    pub fn label(self) -> &'static str {
        match self {
            ScheduleShape::Ring => "ring",
            ScheduleShape::Tree => "tree",
        }
    }
}

/// One message of a collective round: `src` sends `bytes` to `dst`.
/// Ranks are NIC indices (the engine maps rank `r` to the `r`-th NIC
/// attach point of the topology).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollMsg {
    /// Sending rank.
    pub src: u32,
    /// Receiving rank.
    pub dst: u32,
    /// Payload size.
    pub bytes: u32,
}

/// A collective operation instance over `ranks` participants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollectiveSpec {
    /// The operation.
    pub kind: CollectiveKind,
    /// The schedule realizing it.
    pub shape: ScheduleShape,
    /// Participant count (must be ≥ 2).
    pub ranks: u32,
    /// Per-rank contribution size: the full local buffer for
    /// all-to-all (split into `ranks` blocks) and the vector length for
    /// all-reduce.
    pub bytes: u32,
}

impl CollectiveSpec {
    /// Construct, validating the rank count.
    pub fn new(kind: CollectiveKind, shape: ScheduleShape, ranks: u32, bytes: u32) -> Self {
        assert!(ranks >= 2, "a collective needs at least 2 ranks");
        assert!(bytes >= 1, "a collective needs a non-empty payload");
        Self {
            kind,
            shape,
            ranks,
            bytes,
        }
    }

    /// Stable label, e.g. `alltoall-ring-16r`.
    pub fn label(&self) -> String {
        format!(
            "{}-{}-{}r",
            self.kind.label(),
            self.shape.label(),
            self.ranks
        )
    }

    /// Per-block size for all-to-all / per-chunk size for ring
    /// all-reduce (floored at 1 byte so tiny payloads still move).
    fn block_bytes(&self) -> u32 {
        (self.bytes / self.ranks).max(1)
    }

    /// The full round schedule: `rounds()[r]` is every message of round
    /// `r`. Rounds are barriers in the lowered trace — a rank enters
    /// round `r + 1` only after receiving everything addressed to it in
    /// round `r` — so the schedule, not packet timing, fixes the
    /// dataflow. Within a round each ordered `(src, dst)` pair appears
    /// at most once (required by the trace player's `(src, tag)`
    /// mailbox).
    pub fn rounds(&self) -> Vec<Vec<CollMsg>> {
        match (self.kind, self.shape) {
            (CollectiveKind::AllToAll, ScheduleShape::Ring) => self.alltoall_ring(),
            (CollectiveKind::AllToAll, ScheduleShape::Tree) => {
                if self.ranks.is_power_of_two() {
                    self.alltoall_xor()
                } else {
                    // Documented fallback: the XOR exchange needs a
                    // power-of-two group; other sizes use the ring.
                    self.alltoall_ring()
                }
            }
            (CollectiveKind::AllReduce, ScheduleShape::Ring) => self.allreduce_ring(),
            (CollectiveKind::AllReduce, ScheduleShape::Tree) => self.allreduce_tree(),
        }
    }

    /// Rotation all-to-all: round `k ∈ 1..N` has rank `i` send block
    /// `(i + k) mod N` directly to its owner.
    fn alltoall_ring(&self) -> Vec<Vec<CollMsg>> {
        let n = self.ranks;
        let b = self.block_bytes();
        (1..n)
            .map(|k| {
                (0..n)
                    .map(|i| CollMsg {
                        src: i,
                        dst: (i + k) % n,
                        bytes: b,
                    })
                    .collect()
            })
            .collect()
    }

    /// XOR pairwise-exchange all-to-all (power-of-two `N`): in round
    /// `k`, rank `i` sends partner `i ^ 2^k` the `N/2` blocks whose
    /// destinations have bit `k` equal to the partner's bit `k`.
    fn alltoall_xor(&self) -> Vec<Vec<CollMsg>> {
        let n = self.ranks;
        let b = self.block_bytes();
        let half = (n / 2) * b;
        (0..n.ilog2())
            .map(|k| {
                (0..n)
                    .map(|i| CollMsg {
                        src: i,
                        dst: i ^ (1 << k),
                        bytes: half,
                    })
                    .collect()
            })
            .collect()
    }

    /// Ring all-reduce: `N − 1` reduce-scatter rounds then `N − 1`
    /// allgather rounds, each moving one `bytes / N` chunk to the next
    /// rank on the ring.
    fn allreduce_ring(&self) -> Vec<Vec<CollMsg>> {
        let n = self.ranks;
        let c = self.block_bytes();
        (0..2 * (n - 1))
            .map(|_| {
                (0..n)
                    .map(|i| CollMsg {
                        src: i,
                        dst: (i + 1) % n,
                        bytes: c,
                    })
                    .collect()
            })
            .collect()
    }

    /// Binomial-tree all-reduce: reduce to rank 0 (children send up in
    /// `ceil(log2 N)` rounds, high strides first), then broadcast back
    /// down (mirror order).
    fn allreduce_tree(&self) -> Vec<Vec<CollMsg>> {
        let n = self.ranks;
        let b = self.bytes;
        let levels = u32::BITS - (n - 1).leading_zeros(); // ceil(log2 n)
        let mut rounds = Vec::with_capacity(2 * levels as usize);
        // Reduce, ascending strides: at level L, rank i with
        // i % 2^(L+1) == 2^L sends its partial down to i - 2^L. Small
        // strides first, so a rank merges all its subtree before its
        // own partial moves on.
        for level in 0..levels {
            let stride = 1u32 << level;
            let round: Vec<CollMsg> = (0..n)
                .filter(|i| i % (stride * 2) == stride)
                .map(|i| CollMsg {
                    src: i,
                    dst: i - stride,
                    bytes: b,
                })
                .collect();
            rounds.push(round);
        }
        // Broadcast: the reduce mirrored — descending strides fan the
        // finished sum back out from rank 0.
        for level in (0..levels).rev() {
            let stride = 1u32 << level;
            let round: Vec<CollMsg> = (0..n)
                .filter(|i| i % (stride * 2) == stride)
                .map(|i| CollMsg {
                    src: i - stride,
                    dst: i,
                    bytes: b,
                })
                .collect();
            rounds.push(round);
        }
        rounds
    }

    /// Total messages across every round of one iteration.
    pub fn total_messages(&self) -> u64 {
        self.rounds().iter().map(|r| r.len() as u64).sum()
    }
}

/// Verify the schedule's dataflow delivers every rank's contribution to
/// every rank **exactly once** — the correctness oracle for the
/// proptests (ISSUE 7 satellite).
///
/// The model tracks, per rank, the set of source-rank contributions it
/// holds (for all-to-all: the set of `(src → dst)` blocks it has
/// received; for all-reduce: the set of original contributions folded
/// into its partial). Rounds are applied as barriers. Violations —
/// duplicate delivery of the same contribution on the same rank, or a
/// rank left short at the end — return `Err` with a description.
pub fn check_exactly_once(spec: &CollectiveSpec) -> Result<(), String> {
    let n = spec.ranks as usize;
    match spec.kind {
        CollectiveKind::AllToAll => check_alltoall(spec, n),
        CollectiveKind::AllReduce => check_allreduce(spec, n),
    }
}

/// All-to-all model: rank `i` starts holding blocks `(i, d)` for every
/// destination `d`; messages transfer the blocks the protocol routes on
/// that edge; at the end rank `d` must hold block `(s, d)` from every
/// `s` exactly once.
fn check_alltoall(spec: &CollectiveSpec, n: usize) -> Result<(), String> {
    // holds[r] = count per (origin src, final dst) block currently at r.
    let mut holds = vec![vec![0u32; n * n]; n];
    for (i, h) in holds.iter_mut().enumerate() {
        for d in 0..n {
            h[i * n + d] = 1;
        }
    }
    let tree = spec.shape == ScheduleShape::Tree && spec.ranks.is_power_of_two();
    for (rno, round) in spec.rounds().iter().enumerate() {
        let mut deltas = vec![vec![0i64; n * n]; n];
        for m in round {
            let (src, dst) = (m.src as usize, m.dst as usize);
            // Which blocks this message carries, by protocol.
            let carried: Vec<usize> = if tree {
                // XOR round k moves every held block whose final
                // destination lies in the partner's half for bit k.
                let k = rno as u32;
                let dbit = (m.dst >> k) & 1;
                (0..n * n)
                    .filter(|&b| holds[src][b] > 0 && ((b % n) as u32 >> k) & 1 == dbit)
                    .collect()
            } else {
                // Ring round k carries exactly block (src, dst).
                vec![src * n + dst]
            };
            for b in carried {
                if holds[src][b] == 0 {
                    return Err(format!(
                        "round {rno}: rank {src} sends block it does not hold"
                    ));
                }
                // A rank keeps its own (src==dst==self) block; every
                // transferred block leaves the sender.
                deltas[src][b] -= 1;
                deltas[dst][b] += 1;
            }
        }
        for r in 0..n {
            for b in 0..n * n {
                let v = holds[r][b] as i64 + deltas[r][b];
                if v < 0 {
                    return Err(format!("round {rno}: rank {r} oversends block {b}"));
                }
                holds[r][b] = v as u32;
            }
        }
    }
    for d in 0..n {
        for s in 0..n {
            let got = holds[d][s * n + d];
            if got != 1 {
                return Err(format!(
                    "rank {d} holds contribution of rank {s} {got} times (want exactly 1)"
                ));
            }
        }
    }
    Ok(())
}

/// All-reduce model: partials are *sets of original contributions*.
/// Ring: per-chunk sets rotate and union; tree: whole-vector sets merge
/// up then copy down. Exactly-once means every rank's final set is all
/// `N` contributions, and no union ever merges overlapping sets (a
/// duplicate contribution would be reduced twice).
fn check_allreduce(spec: &CollectiveSpec, n: usize) -> Result<(), String> {
    let rounds = spec.rounds();
    match spec.shape {
        ScheduleShape::Ring => {
            // contrib[r][c] = bitset of origins folded into chunk c's
            // partial at rank r.
            let full = (1u64 << n) - 1;
            let mut contrib = vec![vec![0u64; n]; n];
            for (r, row) in contrib.iter_mut().enumerate() {
                for c in row.iter_mut() {
                    *c = 1 << r;
                }
            }
            // Reduce-scatter rounds 0..n-1: in round k, rank i forwards
            // its partial of chunk (i - k - 1) mod n to rank i+1.
            for k in 0..n - 1 {
                let moved: Vec<(usize, usize, u64)> = (0..n)
                    .map(|i| {
                        let c = (i + n - k - 1) % n;
                        (i, c, contrib[i][c])
                    })
                    .collect();
                for (i, c, set) in moved {
                    let dst = (i + 1) % n;
                    if contrib[dst][c] & set != 0 {
                        return Err(format!(
                            "reduce-scatter round {k}: chunk {c} partial overlaps at rank {dst}"
                        ));
                    }
                    contrib[dst][c] |= set;
                    contrib[i][c] = 0; // partial moves on
                }
            }
            // After reduce-scatter, chunk c is complete at rank c
            // (round k forwards chunk (i - k - 1) mod n, so rank i's
            // last delivery lands its own chunk index).
            for (c, row) in contrib.iter().enumerate() {
                if row[c] != full {
                    return Err(format!("chunk {c} incomplete at owner {c}: {:b}", row[c]));
                }
            }
            // Allgather rounds: reduced chunks rotate; after n-1 more
            // rounds everyone has every chunk.
            for k in 0..n - 1 {
                let moved: Vec<(usize, usize, u64)> = (0..n)
                    .map(|i| {
                        let c = (i + n - k) % n;
                        (i, c, contrib[i][c])
                    })
                    .collect();
                for (i, c, set) in moved {
                    if set != full {
                        return Err(format!(
                            "allgather round {k}: rank {i} forwards incomplete chunk {c}"
                        ));
                    }
                    contrib[(i + 1) % n][c] = set;
                }
            }
            for (r, row) in contrib.iter().enumerate() {
                for (c, &set) in row.iter().enumerate() {
                    if set != full {
                        return Err(format!("rank {r} ends without full chunk {c}"));
                    }
                }
            }
            Ok(())
        }
        ScheduleShape::Tree => {
            let full = (1u64 << n) - 1;
            let levels = rounds.len() / 2;
            let mut set = vec![0u64; n];
            for (r, s) in set.iter_mut().enumerate() {
                *s = 1 << r;
            }
            for (rno, round) in rounds.iter().enumerate() {
                let reduce_phase = rno < levels;
                for m in round {
                    let (src, dst) = (m.src as usize, m.dst as usize);
                    if reduce_phase {
                        if set[dst] & set[src] != 0 {
                            return Err(format!(
                                "reduce round {rno}: {src}->{dst} would double-count"
                            ));
                        }
                        set[dst] |= set[src];
                    } else {
                        if set[src] != full {
                            return Err(format!(
                                "bcast round {rno}: rank {src} broadcasts incomplete sum"
                            ));
                        }
                        set[dst] = full;
                    }
                }
            }
            for (r, &s) in set.iter().enumerate() {
                if s != full {
                    return Err(format!("rank {r} ends with partial sum {s:b}"));
                }
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alltoall_ring_round_shape() {
        let s = CollectiveSpec::new(CollectiveKind::AllToAll, ScheduleShape::Ring, 8, 8192);
        let rounds = s.rounds();
        assert_eq!(rounds.len(), 7, "N-1 rotation rounds");
        for r in &rounds {
            assert_eq!(r.len(), 8, "one message per rank per round");
        }
        assert_eq!(s.total_messages(), 56);
        check_exactly_once(&s).unwrap();
    }

    #[test]
    fn alltoall_xor_round_shape() {
        let s = CollectiveSpec::new(CollectiveKind::AllToAll, ScheduleShape::Tree, 16, 16384);
        let rounds = s.rounds();
        assert_eq!(rounds.len(), 4, "log2(16) exchange rounds");
        // Each round every rank sends half its buffer to its partner.
        assert_eq!(rounds[0][0].bytes, 8 * 1024);
        check_exactly_once(&s).unwrap();
    }

    #[test]
    fn alltoall_tree_falls_back_to_ring_off_pow2() {
        let tree = CollectiveSpec::new(CollectiveKind::AllToAll, ScheduleShape::Tree, 6, 600);
        let ring = CollectiveSpec::new(CollectiveKind::AllToAll, ScheduleShape::Ring, 6, 600);
        assert_eq!(tree.rounds(), ring.rounds());
        check_exactly_once(&tree).unwrap();
    }

    #[test]
    fn allreduce_ring_round_shape() {
        let s = CollectiveSpec::new(CollectiveKind::AllReduce, ScheduleShape::Ring, 8, 8000);
        let rounds = s.rounds();
        assert_eq!(rounds.len(), 14, "2(N-1) rounds");
        assert_eq!(rounds[0][0].bytes, 1000, "bytes/N chunks");
        check_exactly_once(&s).unwrap();
    }

    #[test]
    fn allreduce_tree_round_shape() {
        let s = CollectiveSpec::new(CollectiveKind::AllReduce, ScheduleShape::Tree, 8, 4096);
        let rounds = s.rounds();
        assert_eq!(rounds.len(), 6, "2 log2(8) rounds");
        // First reduce round: stride 1, all 8 ranks pair up -> 4 msgs.
        assert_eq!(rounds[0].len(), 4);
        assert_eq!((rounds[0][0].src, rounds[0][0].dst), (1, 0));
        // Last reduce round: stride 4, one message into the root.
        assert_eq!(rounds[2].len(), 1);
        assert_eq!((rounds[2][0].src, rounds[2][0].dst), (4, 0));
        check_exactly_once(&s).unwrap();
    }

    #[test]
    fn allreduce_tree_handles_non_pow2() {
        for n in [3u32, 5, 6, 7, 12, 13] {
            let s = CollectiveSpec::new(CollectiveKind::AllReduce, ScheduleShape::Tree, n, 1024);
            check_exactly_once(&s).unwrap_or_else(|e| panic!("n={n}: {e}"));
        }
    }

    #[test]
    fn every_family_checks_out_across_sizes() {
        for kind in [CollectiveKind::AllToAll, CollectiveKind::AllReduce] {
            for shape in [ScheduleShape::Ring, ScheduleShape::Tree] {
                for n in [2u32, 3, 4, 8, 16, 20] {
                    let s = CollectiveSpec::new(kind, shape, n, 4096);
                    check_exactly_once(&s).unwrap_or_else(|e| {
                        panic!("{} n={n}: {e}", s.label());
                    });
                }
            }
        }
    }

    #[test]
    fn rounds_have_unique_src_dst_pairs() {
        // The trace player's (src, tag) mailbox needs at most one
        // message per ordered pair per round.
        for kind in [CollectiveKind::AllToAll, CollectiveKind::AllReduce] {
            for shape in [ScheduleShape::Ring, ScheduleShape::Tree] {
                let s = CollectiveSpec::new(kind, shape, 16, 4096);
                for (rno, round) in s.rounds().iter().enumerate() {
                    let mut seen = std::collections::HashSet::new();
                    for m in round {
                        assert!(
                            seen.insert((m.src, m.dst)),
                            "{} round {rno}: duplicate ({}, {})",
                            s.label(),
                            m.src,
                            m.dst
                        );
                        assert_ne!(m.src, m.dst, "no self-sends");
                    }
                }
            }
        }
    }

    #[test]
    fn labels_are_stable() {
        let s = CollectiveSpec::new(CollectiveKind::AllToAll, ScheduleShape::Ring, 16, 1024);
        assert_eq!(s.label(), "alltoall-ring-16r");
        let s = CollectiveSpec::new(CollectiveKind::AllReduce, ScheduleShape::Tree, 8, 1024);
        assert_eq!(s.label(), "allreduce-tree-8r");
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn single_rank_rejected() {
        CollectiveSpec::new(CollectiveKind::AllToAll, ScheduleShape::Ring, 1, 64);
    }
}
