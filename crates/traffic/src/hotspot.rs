//! Hot-spot specific traffic scenarios (§4.5).
//!
//! "A set of paths are strategically defined in the network so that they
//! collide and produce high network congestion load. The paths that
//! collide do not share the source and destination nodes, but they do
//! share some portion of their trajectories."
//!
//! The scenarios below reproduce the situations of Figs 4.8/4.9 on the
//! 8×8 mesh: several west-side sources whose XY routes funnel through a
//! shared corridor, plus one initially unaffected bystander flow, and a
//! two-hot-zone variant.

use prdrb_topology::{Mesh2D, NodeId};

/// A fixed set of colliding flows plus uniform background noise.
#[derive(Debug, Clone)]
pub struct HotSpotScenario {
    /// Human-readable name.
    pub name: &'static str,
    /// The deliberately colliding flows.
    pub flows: Vec<(NodeId, NodeId)>,
    /// Nodes injecting uniform noise ("remaining network nodes inject
    /// uniform load", §4.6.1).
    pub noise_nodes: Vec<NodeId>,
    /// Noise rate as a fraction of the hot flows' rate.
    pub noise_fraction: f64,
}

impl HotSpotScenario {
    /// Situation 1 (Fig 4.8): three west-side sources in the same row
    /// whose XY routes share the row-3 eastbound corridor toward
    /// *distinct* east-side destinations ("the paths that collide do not
    /// share the source and destination nodes, but they do share some
    /// portion of their trajectories"); a fourth "bystander" flow in the
    /// adjacent row, initially outside the congestion, later affected by
    /// the alternative paths DRB opens around the corridor (Fig 4.8c).
    pub fn situation1(mesh: &Mesh2D) -> Self {
        let w = mesh.width() - 1;
        let flows = vec![
            (mesh.node_at(0, 3), mesh.node_at(w, 2)),
            (mesh.node_at(1, 3), mesh.node_at(w, 5)),
            (mesh.node_at(2, 3), mesh.node_at(w, 1)),
            // Bystander in the adjacent row.
            (mesh.node_at(3, 4), mesh.node_at(w, 4)),
        ];
        Self::with_noise(mesh, "hot-spot situation 1", flows)
    }

    /// Situations 2 & 3 (Fig 4.9): two distinct hot zones along one long
    /// trajectory — packets of the long flow must cross both congested
    /// areas before reaching their destination.
    pub fn situation2(mesh: &Mesh2D) -> Self {
        let w = mesh.width() - 1;
        let flows = vec![
            // Zone A: collisions on row 3, west half.
            (mesh.node_at(1, 3), mesh.node_at(3, 0)),
            (mesh.node_at(2, 3), mesh.node_at(3, 6)),
            // Zone B: collisions on row 3, east half.
            (mesh.node_at(4, 3), mesh.node_at(w, 6)),
            (mesh.node_at(5, 3), mesh.node_at(w, 0)),
            // The long flow crossing both zones.
            (mesh.node_at(0, 3), mesh.node_at(w, 3)),
        ];
        Self::with_noise(mesh, "hot-spot situations 2 & 3", flows)
    }

    fn with_noise(mesh: &Mesh2D, name: &'static str, flows: Vec<(NodeId, NodeId)>) -> Self {
        let hot: std::collections::HashSet<NodeId> = flows.iter().map(|f| f.0).collect();
        let noise_nodes = (0..mesh.width())
            .flat_map(|x| (0..mesh.height()).map(move |y| (x, y)))
            .map(|(x, y)| mesh.node_at(x, y))
            .filter(|n| !hot.contains(n))
            .collect();
        Self {
            name,
            flows,
            noise_nodes,
            noise_fraction: 0.1,
        }
    }

    /// All sources participating (hot + noise).
    pub fn all_sources(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.flows
            .iter()
            .map(|f| f.0)
            .chain(self.noise_nodes.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prdrb_topology::{route_len, AnyTopology, PathDescriptor, Topology};

    #[test]
    fn situation1_flows_share_trajectory_but_not_endpoints() {
        let mesh = Mesh2D::new(8, 8);
        let s = HotSpotScenario::situation1(&mesh);
        assert_eq!(s.flows.len(), 4);
        // Endpoints are pairwise distinct.
        let mut srcs: Vec<_> = s.flows.iter().map(|f| f.0).collect();
        srcs.sort();
        srcs.dedup();
        assert_eq!(srcs.len(), 4);
        let mut dsts: Vec<_> = s.flows.iter().map(|f| f.1).collect();
        dsts.sort();
        dsts.dedup();
        assert_eq!(dsts.len(), 4);
        // The XY walks of the first three flows share at least one router.
        let topo = AnyTopology::Mesh(mesh);
        let walks: Vec<_> = s.flows[..3]
            .iter()
            .map(|&(a, b)| {
                prdrb_topology::walk_route(&topo, a, b, PathDescriptor::Minimal, 64).unwrap()
            })
            .collect();
        let shared = walks[0]
            .iter()
            .any(|r| walks[1..].iter().all(|w| w.contains(r)));
        assert!(shared, "the corridor must be shared");
    }

    #[test]
    fn bystander_initially_disjoint() {
        let mesh = Mesh2D::new(8, 8);
        let s = HotSpotScenario::situation1(&mesh);
        let topo = AnyTopology::Mesh(mesh);
        let (bs, bd) = s.flows[3];
        let bw = prdrb_topology::walk_route(&topo, bs, bd, PathDescriptor::Minimal, 64).unwrap();
        let (hs, hd) = s.flows[0];
        let hw = prdrb_topology::walk_route(&topo, hs, hd, PathDescriptor::Minimal, 64).unwrap();
        assert!(
            !bw.iter().any(|r| hw.contains(r)),
            "the bystander's minimal route avoids the hot corridor"
        );
    }

    #[test]
    fn situation2_long_flow_crosses_both_zones() {
        let mesh = Mesh2D::new(8, 8);
        let s = HotSpotScenario::situation2(&mesh);
        let topo = AnyTopology::Mesh(mesh);
        let &(ls, ld) = s.flows.last().unwrap();
        let len = route_len(&topo, ls, ld, PathDescriptor::Minimal).unwrap();
        assert!(len >= 7, "the long flow spans the mesh");
    }

    #[test]
    fn noise_nodes_complement_hot_sources() {
        let mesh = Mesh2D::new(8, 8);
        let s = HotSpotScenario::situation1(&mesh);
        assert_eq!(s.noise_nodes.len() + s.flows.len(), 64);
        assert_eq!(s.all_sources().count(), 64);
        let topo = AnyTopology::Mesh(mesh);
        for n in &s.noise_nodes {
            assert!(n.idx() < topo.num_terminals());
        }
    }
}
