//! # prdrb-traffic — synthetic workloads
//!
//! The workload side of the evaluation (§4.4):
//!
//! * [`patterns`] — the systematic permutation benchmarks of Table 4.1
//!   (bit reversal, perfect shuffle, matrix transpose) plus uniform
//!   random traffic;
//! * [`bursty`] — the bursty load schedules of Fig 2.6 (fixed-pattern
//!   and variable-pattern bursts over a uniform background);
//! * [`hotspot`] — the specific colliding-path scenarios of §4.5 used to
//!   analyze the path-opening procedures (Figs 4.8/4.9).

pub mod bursty;
pub mod hotspot;
pub mod patterns;

pub use bursty::{BurstPattern, BurstSchedule};
pub use hotspot::HotSpotScenario;
pub use patterns::TrafficPattern;
