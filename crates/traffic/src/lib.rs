//! # prdrb-traffic — synthetic workloads
//!
//! The workload side of the evaluation (§4.4):
//!
//! * [`patterns`] — the systematic permutation benchmarks of Table 4.1
//!   (bit reversal, perfect shuffle, matrix transpose) plus uniform
//!   random traffic;
//! * [`bursty`] — the bursty load schedules of Fig 2.6 (fixed-pattern
//!   and variable-pattern bursts over a uniform background);
//! * [`hotspot`] — the specific colliding-path scenarios of §4.5 used to
//!   analyze the path-opening procedures (Figs 4.8/4.9);
//! * [`collectives`] — MPI-style all-to-all / all-reduce round
//!   schedules in ring and tree shapes (DESIGN §12);
//! * [`phases`] — phase-structured mini-app loops, the repetitive
//!   workload the solution store is built to learn;
//! * [`openloop`] + [`sampler`] — Poisson arrivals with bounded-Pareto
//!   flow sizes over deterministic splitmix64 streams, the aperiodic
//!   stress case for solution-DB capacity and matching cost.

pub mod bursty;
pub mod collectives;
pub mod hotspot;
pub mod openloop;
pub mod patterns;
pub mod phases;
pub mod sampler;

pub use bursty::{BurstPattern, BurstSchedule};
pub use collectives::{check_exactly_once, CollMsg, CollectiveKind, CollectiveSpec, ScheduleShape};
pub use hotspot::HotSpotScenario;
pub use openloop::OpenLoopSpec;
pub use patterns::TrafficPattern;
pub use phases::{PhaseProgram, PhaseSpec};
pub use sampler::{exp_gap_ns, BoundedPareto, Splitmix64};
