//! Open-loop arrival workload (DESIGN §12).
//!
//! The closed-loop generators (bursts, phases) inject at a rate; an
//! *open-loop* workload instead draws a flow-arrival process that does
//! not react to network backpressure — Poisson arrivals with
//! heavy-tailed (bounded-Pareto) flow sizes, each flow aimed by a
//! spatial pattern. The point is adversarial for PR-DRB: arrivals are
//! *aperiodic*, so the solution store sees a stream of near-miss
//! patterns that stresses capacity, eviction, and the linear matching
//! scan instead of rewarding it, bounding the policy's overhead in the
//! no-repetition regime.
//!
//! Determinism: every draw comes from per-source [`Splitmix64`]
//! substreams of the config seed ([`OpenLoopSpec::stream`]) — no
//! entropy, no wall clock — so the workload folds into the run-cache
//! key exactly like a synthetic schedule.

use crate::patterns::TrafficPattern;
use crate::sampler::{BoundedPareto, Splitmix64};

/// Parameters of the open-loop arrival process. All fields are plain
/// data (hashable into `RunKey`).
#[derive(Debug, Clone)]
pub struct OpenLoopSpec {
    /// Mean flow inter-arrival gap per source node (ns).
    pub mean_gap_ns: f64,
    /// Flow-size tail index (smaller = heavier tail).
    pub alpha: f64,
    /// Smallest flow (bytes).
    pub min_bytes: u32,
    /// Largest flow (bytes).
    pub max_bytes: u32,
    /// Spatial pattern aiming each flow.
    pub pattern: TrafficPattern,
}

impl OpenLoopSpec {
    /// A moderate heavy-tail preset: mean gap `gap_ns`, alpha 1.3,
    /// flows 256 B – 256 KiB, uniformly aimed.
    pub fn heavy_tail(gap_ns: f64) -> Self {
        Self {
            mean_gap_ns: gap_ns,
            alpha: 1.3,
            min_bytes: 256,
            max_bytes: 256 * 1024,
            pattern: TrafficPattern::Uniform,
        }
    }

    /// The size distribution.
    pub fn sizes(&self) -> BoundedPareto {
        BoundedPareto::new(self.alpha, self.min_bytes as f64, self.max_bytes as f64)
    }

    /// The dedicated sampler stream for `source`, derived purely from
    /// the run seed — stream `i` is independent of stream `j` and of
    /// how many draws either has made.
    pub fn stream(&self, seed: u64, source: u32) -> Splitmix64 {
        Splitmix64::substream(seed, source as u64)
    }

    /// Expected offered load per source in Mbps (mean size over mean
    /// gap) — lets targets pick gaps that land at a chosen utilization.
    pub fn offered_mbps(&self) -> f64 {
        let bits = self.sizes().mean() * 8.0;
        bits / (self.mean_gap_ns * 1e-9) / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::exp_gap_ns;

    #[test]
    fn streams_are_per_source_and_reproducible() {
        let s = OpenLoopSpec::heavy_tail(10_000.0);
        let mut a0 = s.stream(9, 0);
        let mut a1 = s.stream(9, 1);
        assert_ne!(a0.next_u64(), a1.next_u64());
        let mut b0 = s.stream(9, 0);
        let mut c0 = s.stream(9, 0);
        assert_eq!(b0.next_u64(), c0.next_u64());
    }

    #[test]
    fn offered_load_matches_simulated_draws() {
        let s = OpenLoopSpec::heavy_tail(50_000.0);
        let sizes = s.sizes();
        let mut rng = s.stream(3, 0);
        let n = 100_000;
        let mut bytes = 0.0;
        let mut ns = 0.0;
        for _ in 0..n {
            ns += exp_gap_ns(&mut rng, s.mean_gap_ns) as f64;
            bytes += sizes.sample(&mut rng);
        }
        let emp_mbps = bytes * 8.0 / (ns * 1e-9) / 1e6;
        let want = s.offered_mbps();
        let err = (emp_mbps - want).abs() / want;
        assert!(err < 0.05, "empirical {emp_mbps} vs {want} Mbps ({err})");
    }
}
