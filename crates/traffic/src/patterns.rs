//! Systematic traffic patterns (Table 4.1).
//!
//! Destination maps over the node-index bit string (`n` bits for `2^n`
//! nodes):
//!
//! | pattern          | map                         |
//! |------------------|-----------------------------|
//! | bit reversal     | `d_i = s_{n-1-i}`           |
//! | perfect shuffle  | `d_i = s_{(i-1) mod n}`     |
//! | matrix transpose | `d_i = s_{(i+n/2) mod n}`   |
//!
//! plus uniform random and fixed hot-spot destinations. Destination maps
//! are fixed per source ("destination nodes remain invariable throughout
//! the pattern", §4.6) except for uniform traffic.

use prdrb_simcore::SimRng;
use prdrb_topology::NodeId;

/// A synthetic destination pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrafficPattern {
    /// Uniformly random destination per message (excluding self).
    Uniform,
    /// Bit reversal permutation.
    BitReversal,
    /// Perfect shuffle (rotate the index left by one bit).
    Shuffle,
    /// Matrix transpose (swap index halves).
    Transpose,
    /// Every source sends to one fixed destination.
    HotSpot(NodeId),
    /// Complement permutation: invert every address bit (`d = ¬s`) —
    /// the worst case for dimension-ordered meshes.
    Complement,
    /// Tornado: `d = s + N/2 - 1 (mod N)` — the classic adversary of
    /// minimal routing on rings/tori.
    Tornado,
    /// Butterfly: swap the most and least significant address bits.
    Butterfly,
    /// Neighbor: `d = s + 1 (mod N)` — pure nearest-neighbor shift.
    Neighbor,
    /// Arbitrary fixed permutation (`dest[src]`).
    Permutation(Vec<NodeId>),
}

/// Number of address bits for `nodes` (requires a power of two for the
/// bit permutations).
fn bits(nodes: usize) -> u32 {
    debug_assert!(nodes.is_power_of_two(), "bit permutations need 2^n nodes");
    nodes.trailing_zeros()
}

/// Reverse the low `n` bits of `x`.
fn bit_reverse(x: u32, n: u32) -> u32 {
    let mut out = 0;
    for i in 0..n {
        out |= ((x >> i) & 1) << (n - 1 - i);
    }
    out
}

/// Rotate the low `n` bits of `x` left by one (perfect shuffle:
/// `d_i = s_{(i-1) mod n}` — output bit `i` takes source bit `i-1`).
fn rotate_left1(x: u32, n: u32) -> u32 {
    let mask = (1u32 << n) - 1;
    ((x << 1) | (x >> (n - 1))) & mask
}

/// Swap the two halves of the low `n` bits (matrix transpose:
/// `d_i = s_{(i + n/2) mod n}`).
fn transpose(x: u32, n: u32) -> u32 {
    let h = n / 2;
    let mask = (1u32 << n) - 1;
    ((x >> h) | (x << (n - h))) & mask
}

impl TrafficPattern {
    /// Destination of `src` in a system of `nodes` terminals.
    ///
    /// Uniform consults `rng`; all other patterns are pure functions of
    /// the source.
    pub fn dest(&self, src: NodeId, nodes: usize, rng: &mut SimRng) -> NodeId {
        match self {
            TrafficPattern::Uniform => {
                if nodes <= 1 {
                    return src;
                }
                // Exclude self to avoid degenerate loopback.
                let mut d = rng.below(nodes - 1) as u32;
                if d >= src.0 {
                    d += 1;
                }
                NodeId(d)
            }
            TrafficPattern::BitReversal => NodeId(bit_reverse(src.0, bits(nodes))),
            TrafficPattern::Shuffle => NodeId(rotate_left1(src.0, bits(nodes))),
            TrafficPattern::Transpose => NodeId(transpose(src.0, bits(nodes))),
            TrafficPattern::HotSpot(d) => *d,
            TrafficPattern::Complement => {
                let n = bits(nodes);
                NodeId(!src.0 & ((1u32 << n) - 1))
            }
            TrafficPattern::Tornado => NodeId(((src.0 as usize + nodes / 2 - 1) % nodes) as u32),
            TrafficPattern::Butterfly => {
                let n = bits(nodes);
                if n < 2 {
                    return src;
                }
                let lo = src.0 & 1;
                let hi = (src.0 >> (n - 1)) & 1;
                let mid = src.0 & !(1 | (1 << (n - 1)));
                NodeId(mid | (lo << (n - 1)) | hi)
            }
            TrafficPattern::Neighbor => NodeId(((src.idx() + 1) % nodes) as u32),
            TrafficPattern::Permutation(p) => p[src.idx() % p.len()],
        }
    }

    /// Short name for reports.
    pub fn label(&self) -> &'static str {
        match self {
            TrafficPattern::Uniform => "uniform",
            TrafficPattern::BitReversal => "bit-reversal",
            TrafficPattern::Shuffle => "shuffle",
            TrafficPattern::Transpose => "transpose",
            TrafficPattern::HotSpot(_) => "hot-spot",
            TrafficPattern::Complement => "complement",
            TrafficPattern::Tornado => "tornado",
            TrafficPattern::Butterfly => "butterfly",
            TrafficPattern::Neighbor => "neighbor",
            TrafficPattern::Permutation(_) => "permutation",
        }
    }

    /// True when the pattern is a fixed permutation (destinations
    /// invariable per source).
    pub fn is_static(&self) -> bool {
        !matches!(self, TrafficPattern::Uniform)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(p: &TrafficPattern, nodes: usize) -> Vec<u32> {
        let mut rng = SimRng::new(0);
        (0..nodes as u32)
            .map(|s| p.dest(NodeId(s), nodes, &mut rng).0)
            .collect()
    }

    #[test]
    fn bit_reversal_known_values() {
        // 64 nodes = 6 bits: 0b000001 → 0b100000.
        let m = map(&TrafficPattern::BitReversal, 64);
        assert_eq!(m[0], 0);
        assert_eq!(m[1], 32);
        assert_eq!(m[0b101001], 0b100101);
        assert_eq!(m[63], 63);
    }

    #[test]
    fn shuffle_rotates_left() {
        // d_i = s_{(i-1) mod n}: bit i of dest = bit i-1 of source,
        // i.e. dest = src rotated left by 1.
        let m = map(&TrafficPattern::Shuffle, 8);
        assert_eq!(m[0b001], 0b010);
        assert_eq!(m[0b100], 0b001);
        assert_eq!(m[0b110], 0b101);
    }

    #[test]
    fn transpose_swaps_halves() {
        let m = map(&TrafficPattern::Transpose, 64);
        // 6 bits: (hi, lo) swap — src 0b000111 → 0b111000.
        assert_eq!(m[0b000111], 0b111000);
        assert_eq!(m[0b111000], 0b000111);
        assert_eq!(m[0b101010], 0b010101);
    }

    #[test]
    fn bit_permutations_are_bijections() {
        for p in [
            TrafficPattern::BitReversal,
            TrafficPattern::Shuffle,
            TrafficPattern::Transpose,
        ] {
            for nodes in [8usize, 32, 64] {
                let mut m = map(&p, nodes);
                m.sort_unstable();
                m.dedup();
                assert_eq!(m.len(), nodes, "{} not a bijection on {nodes}", p.label());
            }
        }
    }

    #[test]
    fn uniform_never_self_and_covers_space() {
        let p = TrafficPattern::Uniform;
        let mut rng = SimRng::new(9);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2000 {
            let d = p.dest(NodeId(5), 64, &mut rng);
            assert_ne!(d, NodeId(5));
            assert!(d.0 < 64);
            seen.insert(d.0);
        }
        assert!(seen.len() > 55, "should cover nearly all destinations");
    }

    #[test]
    fn uniform_single_node_degenerates_to_self() {
        let mut rng = SimRng::new(9);
        assert_eq!(
            TrafficPattern::Uniform.dest(NodeId(0), 1, &mut rng),
            NodeId(0)
        );
    }

    #[test]
    fn hotspot_is_constant() {
        let p = TrafficPattern::HotSpot(NodeId(42));
        let mut rng = SimRng::new(0);
        for s in 0..64 {
            assert_eq!(p.dest(NodeId(s), 64, &mut rng), NodeId(42));
        }
        assert!(p.is_static());
        assert!(!TrafficPattern::Uniform.is_static());
    }

    #[test]
    fn complement_inverts_bits() {
        let m = map(&TrafficPattern::Complement, 64);
        assert_eq!(m[0], 63);
        assert_eq!(m[0b101010], 0b010101);
    }

    #[test]
    fn tornado_is_half_ring_shift() {
        let m = map(&TrafficPattern::Tornado, 64);
        assert_eq!(m[0], 31);
        assert_eq!(m[40], (40 + 31) % 64);
    }

    #[test]
    fn butterfly_swaps_end_bits() {
        let m = map(&TrafficPattern::Butterfly, 64);
        // 6 bits: swap bit 5 and bit 0.
        assert_eq!(m[0b100000], 0b000001);
        assert_eq!(m[0b000001], 0b100000);
        assert_eq!(m[0b100001], 0b100001);
    }

    #[test]
    fn neighbor_wraps() {
        let m = map(&TrafficPattern::Neighbor, 8);
        assert_eq!(m[6], 7);
        assert_eq!(m[7], 0);
    }

    #[test]
    fn extended_patterns_are_bijections() {
        for p in [
            TrafficPattern::Complement,
            TrafficPattern::Tornado,
            TrafficPattern::Butterfly,
            TrafficPattern::Neighbor,
        ] {
            let mut m = map(&p, 64);
            m.sort_unstable();
            m.dedup();
            assert_eq!(m.len(), 64, "{} not a bijection", p.label());
        }
    }

    #[test]
    fn custom_permutation() {
        let p = TrafficPattern::Permutation(vec![NodeId(3), NodeId(2), NodeId(1), NodeId(0)]);
        let mut rng = SimRng::new(0);
        assert_eq!(p.dest(NodeId(0), 4, &mut rng), NodeId(3));
        assert_eq!(p.dest(NodeId(3), 4, &mut rng), NodeId(0));
    }
}
