//! Phase-structured mini-app loops (DESIGN §12).
//!
//! A mini-app iterates a fixed sequence of communication phases —
//! stencil exchange, transpose, reduction, compute-quiet — and that
//! *repetition across iterations* is the best case for PR-DRB's saved
//! solutions: the pattern observed in iteration `k`'s transpose phase
//! recurs verbatim in iteration `k + 1`, so a stored metapath
//! configuration whose pattern similarity clears the paper's ~80 %
//! threshold re-applies without re-exploring. A [`PhaseProgram`] is the
//! time-indexed schedule; the engine drives per-node injection from
//! [`PhaseProgram::at`] exactly as it does for [`crate::bursty`]
//! schedules, and the per-phase probe export reports solution-store hit
//! rates phase by phase.

use crate::patterns::TrafficPattern;
use prdrb_simcore::time::Time;

/// One communication phase of the loop body.
#[derive(Debug, Clone)]
pub struct PhaseSpec {
    /// Stable name for reports ("stencil", "transpose", ...).
    pub label: &'static str,
    /// Spatial pattern driven during the phase.
    pub pattern: TrafficPattern,
    /// Per-node injection rate (Mbps). 0 models a compute phase.
    pub mbps: f64,
    /// Phase length (simulated ns, must be ≥ 1).
    pub duration_ns: Time,
}

/// A mini-app loop: `phases` in order, repeated `iterations` times.
#[derive(Debug, Clone)]
pub struct PhaseProgram {
    /// The loop body.
    pub phases: Vec<PhaseSpec>,
    /// How many times the body repeats (must be ≥ 1).
    pub iterations: u32,
}

impl PhaseProgram {
    /// Construct, validating shape.
    pub fn new(phases: Vec<PhaseSpec>, iterations: u32) -> Self {
        assert!(!phases.is_empty(), "a phase program needs phases");
        assert!(iterations >= 1, "a phase program needs >= 1 iterations");
        assert!(
            phases.iter().all(|p| p.duration_ns >= 1),
            "phase durations must be >= 1 ns"
        );
        Self { phases, iterations }
    }

    /// The canonical mini-app preset used by the `wl_phases` target: a
    /// stencil halo exchange, a matrix transpose, an all-ranks shuffle
    /// (reduction stand-in), and a compute-quiet gap, `iterations`
    /// times. `phase_ns` scales every phase uniformly.
    pub fn mini_app(iterations: u32, phase_ns: Time, mbps: f64) -> Self {
        Self::new(
            vec![
                PhaseSpec {
                    label: "stencil",
                    pattern: TrafficPattern::Neighbor,
                    mbps,
                    duration_ns: phase_ns,
                },
                PhaseSpec {
                    label: "transpose",
                    pattern: TrafficPattern::Transpose,
                    mbps,
                    duration_ns: phase_ns,
                },
                PhaseSpec {
                    label: "shuffle",
                    pattern: TrafficPattern::Shuffle,
                    mbps,
                    duration_ns: phase_ns,
                },
                PhaseSpec {
                    label: "compute",
                    pattern: TrafficPattern::Uniform,
                    mbps: mbps * 0.05,
                    duration_ns: phase_ns,
                },
            ],
            iterations,
        )
    }

    /// Length of one loop iteration.
    pub fn period_ns(&self) -> Time {
        self.phases.iter().map(|p| p.duration_ns).sum()
    }

    /// Length of the whole program.
    pub fn total_ns(&self) -> Time {
        self.period_ns() * self.iterations as Time
    }

    /// The phase in force at `t`: `(global phase index, spec)`, or
    /// `None` once the program has completed. The global index is
    /// `iteration * phases.len() + position` — the per-phase probe
    /// entity, so hit rates can be compared across iterations of the
    /// *same* position.
    pub fn at(&self, t: Time) -> Option<(u32, &PhaseSpec)> {
        if t >= self.total_ns() {
            return None;
        }
        let period = self.period_ns();
        let iter = (t / period) as u32;
        let mut into = t % period;
        for (pos, p) in self.phases.iter().enumerate() {
            if into < p.duration_ns {
                return Some((iter * self.phases.len() as u32 + pos as u32, p));
            }
            into -= p.duration_ns;
        }
        unreachable!("into < period implies a phase matches");
    }

    /// Start time of global phase `g` (for scheduling phase-boundary
    /// work); `None` past the end.
    pub fn phase_start_ns(&self, g: u32) -> Option<Time> {
        let np = self.phases.len() as u32;
        if g >= np * self.iterations {
            return None;
        }
        let iter = (g / np) as Time;
        let pos = (g % np) as usize;
        let into: Time = self.phases[..pos].iter().map(|p| p.duration_ns).sum();
        Some(iter * self.period_ns() + into)
    }

    /// Total number of global phases.
    pub fn num_phases(&self) -> u32 {
        self.phases.len() as u32 * self.iterations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_phase() -> PhaseProgram {
        PhaseProgram::new(
            vec![
                PhaseSpec {
                    label: "a",
                    pattern: TrafficPattern::Transpose,
                    mbps: 400.0,
                    duration_ns: 1_000,
                },
                PhaseSpec {
                    label: "b",
                    pattern: TrafficPattern::Uniform,
                    mbps: 40.0,
                    duration_ns: 3_000,
                },
            ],
            3,
        )
    }

    #[test]
    fn period_and_total() {
        let p = two_phase();
        assert_eq!(p.period_ns(), 4_000);
        assert_eq!(p.total_ns(), 12_000);
        assert_eq!(p.num_phases(), 6);
    }

    #[test]
    fn at_walks_phases_and_iterations() {
        let p = two_phase();
        let (g, s) = p.at(0).unwrap();
        assert_eq!((g, s.label), (0, "a"));
        let (g, s) = p.at(999).unwrap();
        assert_eq!((g, s.label), (0, "a"));
        let (g, s) = p.at(1_000).unwrap();
        assert_eq!((g, s.label), (1, "b"));
        let (g, s) = p.at(4_000).unwrap();
        assert_eq!((g, s.label), (2, "a"), "iteration 1 restarts the body");
        let (g, s) = p.at(11_999).unwrap();
        assert_eq!((g, s.label), (5, "b"));
        assert!(p.at(12_000).is_none(), "program over");
    }

    #[test]
    fn phase_starts_invert_at() {
        let p = two_phase();
        for g in 0..p.num_phases() {
            let t = p.phase_start_ns(g).unwrap();
            let (got, _) = p.at(t).unwrap();
            assert_eq!(got, g, "at(phase_start({g}))");
            if t > 0 {
                let (prev, _) = p.at(t - 1).unwrap();
                assert_eq!(prev, g - 1, "boundary is half-open");
            }
        }
        assert_eq!(p.phase_start_ns(6), None);
    }

    #[test]
    fn mini_app_preset_shape() {
        let p = PhaseProgram::mini_app(5, 200_000, 400.0);
        assert_eq!(p.phases.len(), 4);
        assert_eq!(p.num_phases(), 20);
        assert_eq!(p.total_ns(), 4 * 200_000 * 5);
        // Compute phase is near-quiet.
        assert!(p.phases[3].mbps < p.phases[0].mbps * 0.1);
        // Same position in different iterations replays the pattern.
        let (_, first) = p.at(0).unwrap();
        let (_, again) = p.at(p.period_ns()).unwrap();
        assert_eq!(first.label, again.label);
        assert_eq!(first.pattern.label(), again.pattern.label());
    }

    #[test]
    #[should_panic(expected = "needs phases")]
    fn empty_program_rejected() {
        PhaseProgram::new(vec![], 1);
    }
}
