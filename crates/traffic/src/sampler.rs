//! Deterministic distribution samplers for the open-loop workload.
//!
//! The open-loop arrival generator (DESIGN §12) needs two distributions
//! that the repetitive-burst machinery does not: Poisson inter-arrivals
//! (exponential gaps) and heavy-tailed flow sizes (bounded Pareto, the
//! standard model for datacenter/HPC flow-size distributions). Both are
//! driven by a [`Splitmix64`] stream seeded *only* from `SimConfig`
//! fields — never from wall-clock time or OS entropy — so a workload is
//! a pure function of its config and the run cache stays sound.
//!
//! Splitmix64 is chosen over the workspace's `SimRng` for these streams
//! because its state is one `u64`: the exact sequence is trivially
//! pinned in unit tests, and per-stream seeding (`seed ^ mix(index)`)
//! cannot entangle streams the way splitting a single generator would.

/// One-word PRNG (Vigna's splitmix64). Passes BigCrush; every output is
/// a bijection of the incremented state, so distinct seeds give
/// distinct full-period sequences.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Splitmix64 {
    state: u64,
}

impl Splitmix64 {
    /// Start a stream at `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// A stream for sub-generator `index` of a root `seed` — finalizes
    /// the index so neighbouring streams share no low-bit structure.
    pub fn substream(seed: u64, index: u64) -> Self {
        Self::new(seed ^ mix(index.wrapping_add(0x9E37_79B9_7F4A_7C15)))
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix(self.state)
    }

    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The splitmix64 finalizer (also used by `SimRng::derive` and the
/// fault-plan seeding — one mixing function across the workspace).
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Exponential gap sampler: inter-arrival times of a Poisson process
/// with the given mean, by inversion. The unit draw is clamped away
/// from 0 so `ln` stays finite; gaps are floored at 1 ns (the
/// simulator's time quantum).
pub fn exp_gap_ns(rng: &mut Splitmix64, mean_ns: f64) -> u64 {
    let u = rng.unit().max(1e-12);
    (-u.ln() * mean_ns).max(1.0) as u64
}

/// Bounded Pareto flow-size distribution on `[lo, hi]` with shape
/// `alpha`. Heavy-tailed for small `alpha` (most mass near `lo`, rare
/// huge flows near `hi`) — the canonical stressor for a solution store:
/// many short flows churn the pattern DB while occasional elephants
/// dominate the byte count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundedPareto {
    /// Tail index (must be > 0; heavier tail as it approaches 0).
    pub alpha: f64,
    /// Smallest value (must be > 0).
    pub lo: f64,
    /// Largest value (must be ≥ `lo`).
    pub hi: f64,
}

impl BoundedPareto {
    /// Construct, validating the parameter domain.
    pub fn new(alpha: f64, lo: f64, hi: f64) -> Self {
        assert!(alpha > 0.0, "bounded Pareto needs alpha > 0");
        assert!(lo > 0.0 && hi >= lo, "bounded Pareto needs 0 < lo <= hi");
        Self { alpha, lo, hi }
    }

    /// Draw one sample by inverse CDF:
    /// `F^-1(u) = (lo^-a - u (lo^-a - hi^-a))^(-1/a)`.
    pub fn sample(&self, rng: &mut Splitmix64) -> f64 {
        if self.hi == self.lo {
            return self.lo;
        }
        let u = rng.unit();
        let la = self.lo.powf(-self.alpha);
        let ha = self.hi.powf(-self.alpha);
        (la - u * (la - ha)).powf(-1.0 / self.alpha)
    }

    /// Closed-form mean — the tolerance reference for the sampler tests.
    pub fn mean(&self) -> f64 {
        let (a, l, h) = (self.alpha, self.lo, self.hi);
        if h == l {
            return l;
        }
        if (a - 1.0).abs() < 1e-9 {
            // alpha = 1 limit: mean = ln(h/l) / (1/l - 1/h).
            return (h / l).ln() / (1.0 / l - 1.0 / h);
        }
        let la = l.powf(-a);
        let ha = h.powf(-a);
        (a / (a - 1.0)) * (l.powf(1.0 - a) - h.powf(1.0 - a)) / (la - ha)
    }

    /// Closed-form CDF on `[lo, hi]` — the reference for the empirical
    /// CDF tolerance test.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= self.lo {
            return 0.0;
        }
        if x >= self.hi {
            return 1.0;
        }
        let la = self.lo.powf(-self.alpha);
        let ha = self.hi.powf(-self.alpha);
        (la - x.powf(-self.alpha)) / (la - ha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The exact splitmix64 reference sequence for seed 1234567
    // (computed once from the published algorithm and pinned): any
    // change to the generator silently changes every open-loop
    // workload, so the raw outputs are asserted verbatim.
    #[test]
    fn splitmix64_exact_sequence_is_pinned() {
        let mut a = Splitmix64::new(1234567);
        let got: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let mut b = Splitmix64::new(1234567);
        let again: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_eq!(got, again, "same seed, same sequence");
        let mut c = Splitmix64::new(0);
        // Known-good splitmix64(0) first outputs, from the reference
        // implementation (Vigna, 2015).
        assert_eq!(c.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(c.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(c.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn substreams_differ_and_are_deterministic() {
        let mut s0 = Splitmix64::substream(42, 0);
        let mut s1 = Splitmix64::substream(42, 1);
        let a0 = s0.next_u64();
        let a1 = s1.next_u64();
        assert_ne!(a0, a1, "substreams must decorrelate");
        let mut r0 = Splitmix64::substream(42, 0);
        assert_eq!(r0.next_u64(), a0);
    }

    #[test]
    fn unit_is_in_range_and_deterministic() {
        let mut rng = Splitmix64::new(7);
        let seq: Vec<f64> = (0..1000).map(|_| rng.unit()).collect();
        assert!(seq.iter().all(|&u| (0.0..1.0).contains(&u)));
        let mut rng2 = Splitmix64::new(7);
        let seq2: Vec<f64> = (0..1000).map(|_| rng2.unit()).collect();
        assert_eq!(seq, seq2);
    }

    #[test]
    fn exp_gaps_match_closed_form_mean() {
        let mut rng = Splitmix64::new(99);
        let mean = 5_000.0;
        let n = 200_000;
        let sum: u64 = (0..n).map(|_| exp_gap_ns(&mut rng, mean)).sum();
        let emp = sum as f64 / n as f64;
        let err = (emp - mean).abs() / mean;
        assert!(err < 0.02, "empirical mean {emp} vs {mean} (err {err})");
    }

    #[test]
    fn exp_gap_exact_sequence_per_seed() {
        let mut a = Splitmix64::new(31337);
        let sa: Vec<u64> = (0..8).map(|_| exp_gap_ns(&mut a, 1000.0)).collect();
        let mut b = Splitmix64::new(31337);
        let sb: Vec<u64> = (0..8).map(|_| exp_gap_ns(&mut b, 1000.0)).collect();
        assert_eq!(sa, sb);
        let mut c = Splitmix64::new(31338);
        let sc: Vec<u64> = (0..8).map(|_| exp_gap_ns(&mut c, 1000.0)).collect();
        assert_ne!(sa, sc, "different seed, different gaps");
        assert!(sa.iter().all(|&g| g >= 1), "gaps floored at 1 ns");
    }

    #[test]
    fn pareto_samples_stay_in_bounds() {
        let p = BoundedPareto::new(1.3, 64.0, 1_048_576.0);
        let mut rng = Splitmix64::new(5);
        for _ in 0..50_000 {
            let x = p.sample(&mut rng);
            assert!(x >= p.lo && x <= p.hi, "sample {x} out of bounds");
        }
    }

    #[test]
    fn pareto_mean_matches_closed_form() {
        for alpha in [0.8, 1.0, 1.3, 2.5] {
            let p = BoundedPareto::new(alpha, 100.0, 100_000.0);
            let mut rng = Splitmix64::new(11);
            let n = 400_000;
            let sum: f64 = (0..n).map(|_| p.sample(&mut rng)).sum();
            let emp = sum / n as f64;
            let want = p.mean();
            let err = (emp - want).abs() / want;
            assert!(
                err < 0.03,
                "alpha {alpha}: empirical {emp} vs closed-form {want} (err {err})"
            );
        }
    }

    #[test]
    fn pareto_empirical_cdf_matches_closed_form() {
        let p = BoundedPareto::new(1.5, 64.0, 65_536.0);
        let mut rng = Splitmix64::new(17);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| p.sample(&mut rng)).collect();
        for q in [100.0, 500.0, 2_000.0, 10_000.0, 50_000.0] {
            let emp = samples.iter().filter(|&&x| x <= q).count() as f64 / n as f64;
            let want = p.cdf(q);
            assert!(
                (emp - want).abs() < 0.01,
                "CDF({q}): empirical {emp} vs closed-form {want}"
            );
        }
        assert_eq!(p.cdf(p.lo), 0.0);
        assert_eq!(p.cdf(p.hi), 1.0);
    }

    #[test]
    fn pareto_exact_sequence_per_seed() {
        let p = BoundedPareto::new(1.3, 64.0, 4096.0);
        let mut a = Splitmix64::new(2024);
        let sa: Vec<u64> = (0..8).map(|_| p.sample(&mut a) as u64).collect();
        let mut b = Splitmix64::new(2024);
        let sb: Vec<u64> = (0..8).map(|_| p.sample(&mut b) as u64).collect();
        assert_eq!(sa, sb);
    }

    #[test]
    fn degenerate_pareto_is_constant() {
        let p = BoundedPareto::new(1.0, 512.0, 512.0);
        let mut rng = Splitmix64::new(1);
        assert_eq!(p.sample(&mut rng), 512.0);
        assert_eq!(p.mean(), 512.0);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn pareto_rejects_bad_alpha() {
        BoundedPareto::new(0.0, 1.0, 2.0);
    }
}
