//! Property-based tests of the workload layer (ISSUE 7 satellite):
//! every collective schedule delivers each rank's contribution exactly
//! once for randomized rank counts and payloads, and the deterministic
//! samplers are pure functions of their seeds.

use prdrb_traffic::{
    check_exactly_once, exp_gap_ns, BoundedPareto, CollectiveKind, CollectiveSpec, PhaseProgram,
    PhaseSpec, ScheduleShape, Splitmix64, TrafficPattern,
};
use proptest::prelude::*;

fn kind_strategy() -> impl Strategy<Value = CollectiveKind> {
    prop_oneof![
        Just(CollectiveKind::AllToAll),
        Just(CollectiveKind::AllReduce)
    ]
}

fn shape_strategy() -> impl Strategy<Value = ScheduleShape> {
    prop_oneof![Just(ScheduleShape::Ring), Just(ScheduleShape::Tree)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Exactly-once delivery for every (kind, shape) on arbitrary rank
    /// counts — including non-powers-of-two, where the tree all-to-all
    /// falls back to the ring and the binomial tree goes ragged.
    #[test]
    fn collectives_deliver_exactly_once(
        kind in kind_strategy(),
        shape in shape_strategy(),
        ranks in 2u32..65,
        bytes in 1u32..1_000_000,
    ) {
        let spec = CollectiveSpec::new(kind, shape, ranks, bytes);
        prop_assert!(
            check_exactly_once(&spec).is_ok(),
            "{}: {:?}", spec.label(), check_exactly_once(&spec)
        );
    }

    /// Structural invariants every schedule must satisfy for the trace
    /// player: no self-sends, at most one message per ordered (src,
    /// dst) pair per round, ranks in range, payloads non-empty.
    #[test]
    fn schedules_are_player_safe(
        kind in kind_strategy(),
        shape in shape_strategy(),
        ranks in 2u32..33,
        bytes in 1u32..65_536,
    ) {
        let spec = CollectiveSpec::new(kind, shape, ranks, bytes);
        for (rno, round) in spec.rounds().iter().enumerate() {
            let mut seen = std::collections::HashSet::new();
            for m in round {
                prop_assert!(m.src < ranks && m.dst < ranks, "round {rno}: rank range");
                prop_assert!(m.src != m.dst, "round {rno}: self-send");
                prop_assert!(m.bytes >= 1, "round {rno}: empty payload");
                prop_assert!(seen.insert((m.src, m.dst)), "round {rno}: dup pair");
            }
        }
    }

    /// The sampler streams are pure functions of (seed, index): same
    /// inputs replay byte-identical sequences, different seeds diverge.
    #[test]
    fn sampler_streams_are_pure(seed in 0u64..u64::MAX, index in 0u64..1024) {
        let mut a = Splitmix64::substream(seed, index);
        let mut b = Splitmix64::substream(seed, index);
        let sa: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        prop_assert_eq!(sa, sb);
    }

    /// Bounded-Pareto samples always land inside [lo, hi], whatever the
    /// parameters and seed.
    #[test]
    fn pareto_always_in_bounds(
        seed in 0u64..u64::MAX,
        alpha in 0.2f64..4.0,
        lo in 1.0f64..1_000.0,
        span in 0.0f64..1_000_000.0,
    ) {
        let p = BoundedPareto::new(alpha, lo, lo + span);
        let mut rng = Splitmix64::new(seed);
        for _ in 0..64 {
            let x = p.sample(&mut rng);
            prop_assert!(x >= p.lo - 1e-9 && x <= p.hi + 1e-9, "{x} outside [{}, {}]", p.lo, p.hi);
        }
    }

    /// Exponential gaps are >= 1 ns and deterministic per seed.
    #[test]
    fn exp_gaps_floor_and_replay(seed in 0u64..u64::MAX, mean in 1.0f64..1e7) {
        let mut a = Splitmix64::new(seed);
        let mut b = Splitmix64::new(seed);
        for _ in 0..32 {
            let ga = exp_gap_ns(&mut a, mean);
            prop_assert!(ga >= 1);
            prop_assert_eq!(ga, exp_gap_ns(&mut b, mean));
        }
    }

    /// Phase lookup is total on [0, total_ns) and consistent with the
    /// phase-start inverse for arbitrary programs.
    #[test]
    fn phase_lookup_is_total(
        durations in proptest::collection::vec(1u64..10_000, 1..6),
        iterations in 1u32..5,
        probe in 0u64..u64::MAX,
    ) {
        let phases: Vec<PhaseSpec> = durations
            .iter()
            .map(|&d| PhaseSpec {
                label: "p",
                pattern: TrafficPattern::Uniform,
                mbps: 100.0,
                duration_ns: d,
            })
            .collect();
        let prog = PhaseProgram::new(phases, iterations);
        let t = probe % prog.total_ns();
        let (g, _) = prog.at(t).expect("in range");
        prop_assert!(g < prog.num_phases());
        let start = prog.phase_start_ns(g).expect("valid phase");
        prop_assert!(start <= t);
        prop_assert!(prog.at(start).unwrap().0 == g);
        prop_assert!(prog.at(prog.total_ns()).is_none());
    }
}
