//! Application-trace replay: the POP comparison of Fig 4.27.
//!
//! Replays a synthetic Parallel Ocean Program logical trace (64 ranks:
//! non-blocking 4-neighbor halo + allreduce-heavy barotropic solver) on
//! the 4-ary 3-tree under all seven routing policies of the thesis'
//! §4.8.4 and reports global latency and execution time.
//!
//! ```sh
//! cargo run --release --example application_trace
//! ```

use pr_drb::prelude::*;

fn main() {
    println!("POP (64 ranks, 16 steps) on the 4-ary 3-tree\n");
    let mut rows = Vec::new();
    for policy in PolicyKind::ALL {
        let mut cfg = SimConfig::trace(TopologyKind::FatTree443, policy, pop(64, 16));
        // Keep opened paths alive across POP's short phases.
        cfg.drb.threshold_low_ns = 500;
        cfg.drb.threshold_high_ns = 10_000;
        cfg.label = format!("pop/{}", policy.label());
        let r = run(cfg);
        println!("{}", r.oneline());
        rows.push((policy, r));
    }

    let lat = |k: PolicyKind| {
        rows.iter()
            .find(|(p, _)| *p == k)
            .map(|(_, r)| r.global_avg_latency_us)
            .unwrap()
    };
    println!(
        "\nPR-DRB vs deterministic: {:+.1} % latency \
         (paper: -38 % vs the oblivious baselines)",
        100.0 * (lat(PolicyKind::PrDrb) / lat(PolicyKind::Deterministic) - 1.0)
    );
    let pr = &rows
        .iter()
        .find(|(p, _)| *p == PolicyKind::PrDrb)
        .unwrap()
        .1;
    println!(
        "PR-DRB learned {} contention patterns; {} were re-applied {} times",
        pr.policy_stats.patterns_found,
        pr.policy_stats.patterns_reused,
        pr.policy_stats.reuse_applications,
    );
    println!("\nPer-router contention map (PR-DRB):");
    print!("{}", pr.latency_map.render());
}
