//! Calibration sweep (development tool): find the threshold regime where
//! the paper's qualitative results appear at *both* evaluation loads —
//! deterministic worst, DRB better, PR-DRB best on repetitive bursts.

use pr_drb::prelude::*;

fn run_avg(rate: f64, low_us: u64, high_us: u64, policy: PolicyKind) -> f64 {
    let seeds = [1u64, 2, 3];
    let total: f64 = seeds
        .iter()
        .map(|&seed| {
            let schedule =
                BurstSchedule::repetitive(TrafficPattern::Shuffle, rate, 1_000_000, 500_000);
            let mut cfg = SimConfig::synthetic(TopologyKind::FatTree443, policy, schedule, 32);
            cfg.duration_ns = 9 * MILLISECOND;
            cfg.max_ns = 9000 * MILLISECOND;
            cfg.net.monitor.router_threshold_ns = 4_000;
            cfg.drb.threshold_low_ns = low_us * MICROSECOND;
            cfg.drb.threshold_high_ns = high_us * MICROSECOND;
            cfg.seed = seed;
            run(cfg).global_avg_latency_us
        })
        .sum();
    total / 3.0
}

fn main() {
    for rate in [400.0, 600.0] {
        for (low, high) in [(3u64, 8u64), (4, 10), (5, 12), (8, 20)] {
            let det = run_avg(rate, low, high, PolicyKind::Deterministic);
            let drb = run_avg(rate, low, high, PolicyKind::Drb);
            let pr = run_avg(rate, low, high, PolicyKind::PrDrb);
            println!(
                "rate {rate:4} thr {low:2}/{high:2}: det {det:8.2}  drb {drb:8.2} ({:+5.1}%)  pr {pr:8.2} ({:+5.1}% vs drb)",
                100.0 * (drb / det - 1.0),
                100.0 * (pr / drb - 1.0),
            );
        }
    }
}
