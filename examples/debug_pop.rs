//! Development tool: dissect POP execution time under policy variants.

use pr_drb::prelude::*;
use prdrb_engine::Simulation;

fn run_pop(policy: PolicyKind, tune: impl Fn(&mut SimConfig), label: &str) {
    let mut cfg = SimConfig::trace(TopologyKind::FatTree443, policy, pop(64, 24));
    tune(&mut cfg);
    cfg.label = label.into();
    let r = Simulation::new(cfg).run();
    println!(
        "{:<28} lat {:>8.2} us  exec {:>9.3} ms  acks {:>7}  exp {:>5} shr {:>5} msgs {}",
        label,
        r.global_avg_latency_us,
        r.exec_time_ns.unwrap_or(0) as f64 / 1e6,
        r.acks_sent,
        r.policy_stats.expansions,
        r.policy_stats.shrinks,
        r.messages,
    );
}

fn main() {
    run_pop(PolicyKind::Deterministic, |_| {}, "det");
    run_pop(PolicyKind::Random, |_| {}, "random");
    run_pop(PolicyKind::Drb, |_| {}, "drb default");
    run_pop(
        PolicyKind::Drb,
        |c| c.drb.adjust_settle_ns = 10_000,
        "drb settle=10us",
    );
    run_pop(PolicyKind::Drb, |c| c.drb.max_paths = 2, "drb maxpaths=2");
    run_pop(
        PolicyKind::Drb,
        |c| {
            c.drb.threshold_low_ns = 20_000;
            c.drb.threshold_high_ns = 50_000;
        },
        "drb thr=20/50",
    );
    run_pop(PolicyKind::Drb, |c| c.net.ack_bytes = 1, "drb ack=1B");
    run_pop(
        PolicyKind::Drb,
        |c| {
            c.drb.threshold_low_ns = 3_000;
            c.drb.threshold_high_ns = 10_000;
        },
        "drb thr=3/10",
    );
    run_pop(
        PolicyKind::PrDrb,
        |c| {
            c.drb.threshold_low_ns = 3_000;
            c.drb.threshold_high_ns = 10_000;
        },
        "pr-drb thr=3/10",
    );
    run_pop(PolicyKind::Cyclic, |_| {}, "cyclic (staggered)");
    for (lo, hi, settle) in [(1u64, 10u64, 20u64), (1, 10, 120), (1, 6, 20)] {
        let label = format!("drb thr={lo}/{hi} settle={settle}");
        let label: &'static str = Box::leak(label.into_boxed_str());
        run_pop(
            PolicyKind::Drb,
            move |c| {
                c.drb.threshold_low_ns = lo * 1_000;
                c.drb.threshold_high_ns = hi * 1_000;
                c.drb.adjust_settle_ns = settle * 1_000;
            },
            label,
        );
        let label2: &'static str = Box::leak(format!("pr {lo}/{hi}/{settle}").into_boxed_str());
        run_pop(
            PolicyKind::PrDrb,
            move |c| {
                c.drb.threshold_low_ns = lo * 1_000;
                c.drb.threshold_high_ns = hi * 1_000;
                c.drb.adjust_settle_ns = settle * 1_000;
            },
            label2,
        );
    }
}
