//! Hot-spot analysis on the 8×8 mesh — the path-opening study of §4.5.
//!
//! Reproduces the setting of Figs 4.8/4.9: colliding flows that share a
//! corridor (not endpoints), uniform background noise, and the gradual
//! path-opening behaviour of DRB, rendered as latency surface maps.
//!
//! ```sh
//! cargo run --release --example hotspot_mesh
//! ```

use pr_drb::prelude::*;
use pr_drb::topology::Mesh2D;

fn scenario_cfg(policy: PolicyKind, scenario: &HotSpotScenario) -> SimConfig {
    let mut cfg = SimConfig::synthetic(
        TopologyKind::Mesh8x8,
        policy,
        BurstSchedule::continuous(TrafficPattern::Uniform, 1.0),
        0,
    );
    cfg.workload = Workload::Flows {
        flows: scenario.flows.clone(),
        mbps: 700.0,
        noise_nodes: scenario.noise_nodes.clone(),
        noise_mbps: 70.0,
        msg_bytes: 1024,
    };
    cfg.duration_ns = 3 * MILLISECOND;
    cfg.max_ns = 3000 * MILLISECOND;
    cfg.label = format!("hotspot/{}", policy.label());
    cfg
}

fn main() {
    let mesh = Mesh2D::new(8, 8);
    for scenario in [
        HotSpotScenario::situation1(&mesh),
        HotSpotScenario::situation2(&mesh),
    ] {
        println!("=== {} ===", scenario.name);
        for (s, d) in &scenario.flows {
            println!("  hot flow {s} -> {d}");
        }
        let det = run(scenario_cfg(PolicyKind::Deterministic, &scenario));
        let drb = run(scenario_cfg(PolicyKind::Drb, &scenario));
        println!(
            "\ndeterministic: {:.2} us avg latency — the shared corridor saturates:",
            det.global_avg_latency_us
        );
        print!("{}", det.latency_map.render());
        println!(
            "drb: {:.2} us ({} paths opened, {} closed) — load spreads around it:",
            drb.global_avg_latency_us, drb.policy_stats.expansions, drb.policy_stats.shrinks
        );
        print!("{}", drb.latency_map.render());
        println!();
    }
}
