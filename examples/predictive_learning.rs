//! The predictive mechanism up close (§3.2.6–3.2.8): repetitive bursty
//! traffic, the solution database filling up, and the two notification
//! schemes (destination-based vs router-based) side by side.
//!
//! ```sh
//! cargo run --release --example predictive_learning
//! ```

use pr_drb::prelude::*;

fn run_variant(router_based: bool) -> RunReport {
    let schedule = BurstSchedule::repetitive(TrafficPattern::Shuffle, 600.0, 1_000_000, 500_000);
    let mut cfg = SimConfig::synthetic(TopologyKind::FatTree443, PolicyKind::PrDrb, schedule, 32);
    cfg.duration_ns = 9 * MILLISECOND;
    cfg.drb.router_based = router_based;
    cfg.label = if router_based {
        "router-based"
    } else {
        "destination-based"
    }
    .into();
    run(cfg)
}

fn main() {
    println!("PR-DRB learning under repetitive shuffle bursts (600 Mbps/node)\n");
    let dest = run_variant(false);
    let router = run_variant(true);
    for r in [&dest, &router] {
        println!("{}", r.oneline());
        println!(
            "    congestion patterns: {} found, {} matched again, {} solution applications",
            r.policy_stats.patterns_found,
            r.policy_stats.patterns_reused,
            r.policy_stats.reuse_applications,
        );
        println!(
            "    paths opened gradually: {}  (each reuse skips this procedure)",
            r.policy_stats.expansions
        );
    }
    println!(
        "\nrouter-based early notification vs destination-based: {:+.1} % latency",
        100.0 * (router.global_avg_latency_us / dest.global_avg_latency_us - 1.0)
    );
    println!("\nLatency curve (destination-based):");
    print!("{}", render_series(&[("pr-drb", &dest.series)], 10));
}
