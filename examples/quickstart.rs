//! Quickstart: compare routing policies on the fat-tree under the
//! shuffle permutation of Fig 4.14 (32 communicating nodes at
//! 600 Mbps/node — the congested regime where adaptation matters).
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pr_drb::prelude::*;

fn main() {
    println!("PR-DRB quickstart — 4-ary 3-tree, shuffle, 32 nodes @ 600 Mbps/node\n");
    let mut reports = Vec::new();
    for policy in [
        PolicyKind::Deterministic,
        PolicyKind::Drb,
        PolicyKind::PrDrb,
    ] {
        // Repetitive bursts (Fig 2.6a): the workload PR-DRB learns from.
        let schedule =
            BurstSchedule::repetitive(TrafficPattern::Shuffle, 600.0, 1_000_000, 500_000);
        let mut cfg = SimConfig::synthetic(TopologyKind::FatTree443, policy, schedule, 32);
        cfg.duration_ns = 9 * MILLISECOND;
        cfg.label = format!("shuffle-32n-600M/{}", policy.label());
        let report = run(cfg);
        println!("{}", report.oneline());
        reports.push(report);
    }

    println!("\nGlobal latency curves:");
    let series: Vec<(&str, _)> = reports
        .iter()
        .map(|r| (r.policy.as_str(), &r.series))
        .collect();
    print!("{}", render_series(&series, 12));

    let det = SeriesSummary::of(&reports[0].series);
    let drb = SeriesSummary::of(&reports[1].series);
    let pr = SeriesSummary::of(&reports[2].series);
    println!(
        "\nDRB vs deterministic: {:+.1} % latency    PR-DRB vs DRB: {:+.1} %",
        -100.0 * drb.reduction_vs(&det),
        -100.0 * pr.reduction_vs(&drb),
    );
    println!(
        "PR-DRB learning: {} patterns saved, {} reused, {} applications",
        reports[2].policy_stats.patterns_found,
        reports[2].policy_stats.patterns_reused,
        reports[2].policy_stats.reuse_applications,
    );
}
