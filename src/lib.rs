//! # pr-drb — Predictive and Distributed Routing Balancing
//!
//! A full reproduction of *"Predictive and Distributed Routing Balancing
//! for High Speed Interconnection Networks"* (IEEE CLUSTER 2011): the
//! PR-DRB source routing policy, the DRB / FR-DRB baselines, a
//! from-scratch interconnection-network simulator (mesh and k-ary n-tree
//! fat-trees, virtual cut-through routers with credit flow control), the
//! synthetic and application workloads of the evaluation chapter, and a
//! harness regenerating every table and figure.
//!
//! ## Quickstart
//!
//! ```
//! use pr_drb::prelude::*;
//!
//! // Fat-tree, 32 communicating nodes, shuffle traffic at 400 Mbps/node
//! // (the setup of Fig 4.13), under PR-DRB.
//! let schedule = BurstSchedule::repetitive(
//!     TrafficPattern::Shuffle, 400.0, 200_000, 100_000);
//! let mut cfg = SimConfig::synthetic(
//!     TopologyKind::FatTree443, PolicyKind::PrDrb, schedule, 32);
//! cfg.duration_ns = 500_000; // keep the doctest quick
//! let report = pr_drb::engine::run(cfg);
//! assert_eq!(report.offered, report.accepted); // lossless network
//! ```
//!
//! The crates re-exported below each own one subsystem; see `DESIGN.md`
//! for the full inventory and the experiment index.

pub use prdrb_apps as apps;
pub use prdrb_core as core;
pub use prdrb_engine as engine;
pub use prdrb_metrics as metrics;
pub use prdrb_network as network;
pub use prdrb_simcore as simcore;
pub use prdrb_topology as topology;
pub use prdrb_traffic as traffic;

/// Everything needed to configure and run simulations.
pub mod prelude {
    pub use prdrb_apps::{
        lammps, nas_ft, nas_lu, nas_mg, pop, smg2000, sweep3d, LammpsProblem, NasClass, Trace,
    };
    pub use prdrb_core::{DrbConfig, PolicyKind, Similarity};
    pub use prdrb_engine::{run, run_replicas, RunReport, SimConfig, TopologyKind, Workload};
    pub use prdrb_metrics::{render_series, LatencyMap, SeriesSummary};
    pub use prdrb_network::{MonitorConfig, NetworkConfig, NotifyMode};
    pub use prdrb_simcore::time::{MICROSECOND, MILLISECOND, SECOND};
    pub use prdrb_topology::{AnyTopology, NodeId, Topology};
    pub use prdrb_traffic::{
        BurstPattern, BurstSchedule, CollectiveKind, CollectiveSpec, HotSpotScenario, OpenLoopSpec,
        PhaseProgram, PhaseSpec, ScheduleShape, TrafficPattern,
    };
}
