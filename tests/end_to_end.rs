//! Workspace integration tests: full simulations spanning every crate
//! (topology → network → core policies → engine → metrics).

use pr_drb::prelude::*;

fn quick_synth(
    topology: TopologyKind,
    policy: PolicyKind,
    pattern: TrafficPattern,
    mbps: f64,
) -> SimConfig {
    let schedule = BurstSchedule::continuous(pattern, mbps);
    let mut cfg = SimConfig::synthetic(topology, policy, schedule, 32);
    cfg.duration_ns = 300_000; // 0.3 ms — keep debug-mode tests fast
    cfg.max_ns = 100 * MILLISECOND;
    cfg
}

#[test]
fn every_policy_runs_on_every_topology() {
    for topology in [TopologyKind::Mesh8x8, TopologyKind::FatTree443] {
        for policy in PolicyKind::ALL {
            let r = run(quick_synth(
                topology,
                policy,
                TrafficPattern::Shuffle,
                400.0,
            ));
            assert_eq!(
                r.offered, r.accepted,
                "{policy:?} on {topology:?} lost packets"
            );
            assert!(
                r.messages > 50,
                "{policy:?} on {topology:?} barely injected"
            );
            assert!(r.global_avg_latency_us > 0.0);
        }
    }
}

#[test]
fn all_patterns_deliver_everything() {
    for pattern in [
        TrafficPattern::Uniform,
        TrafficPattern::Shuffle,
        TrafficPattern::BitReversal,
        TrafficPattern::Transpose,
    ] {
        let r = run(quick_synth(
            TopologyKind::FatTree443,
            PolicyKind::PrDrb,
            pattern,
            500.0,
        ));
        assert_eq!(r.offered, r.accepted);
        assert_eq!(r.throughput_ratio(), 1.0);
    }
}

#[test]
fn trace_replay_end_to_end_for_every_app() {
    let traces: Vec<Trace> = vec![
        nas_lu(NasClass::S, 16),
        nas_mg(NasClass::S, 16),
        nas_ft(NasClass::S, 8),
        lammps(LammpsProblem::Chain, 16),
        lammps(LammpsProblem::Comb, 16),
        pop(16, 3),
        sweep3d(16),
        smg2000(16),
    ];
    for trace in traces {
        let name = trace.name.clone();
        let cfg = SimConfig::trace(TopologyKind::FatTree443, PolicyKind::PrDrb, trace);
        let r = run(cfg);
        assert!(!r.truncated, "{name} did not complete");
        assert!(r.exec_time_ns.unwrap() > 0, "{name} finished in zero time");
        assert_eq!(r.offered, r.accepted, "{name} lost packets");
    }
}

#[test]
fn identical_seeds_replay_identically_through_the_whole_stack() {
    let make = || {
        let mut cfg = quick_synth(
            TopologyKind::Mesh8x8,
            PolicyKind::PrFrDrb,
            TrafficPattern::Uniform,
            600.0,
        );
        cfg.seed = 42;
        cfg
    };
    let a = run(make());
    let b = run(make());
    assert_eq!(a.global_avg_latency_us, b.global_avg_latency_us);
    assert_eq!(a.messages, b.messages);
    assert_eq!(a.end_ns, b.end_ns);
    assert_eq!(a.notifications, b.notifications);
}

#[test]
fn replicas_helper_varies_seeds() {
    let cfg = quick_synth(
        TopologyKind::FatTree443,
        PolicyKind::Deterministic,
        TrafficPattern::Uniform,
        300.0,
    );
    let reports = run_replicas(&cfg, &[1, 2, 3]);
    assert_eq!(reports.len(), 3);
    // Uniform traffic differs per seed, so at least two replicas must
    // genuinely diverge — if all three agree the seed is being ignored.
    let lats: Vec<f64> = reports.iter().map(|r| r.global_avg_latency_us).collect();
    assert!(
        lats.iter().all(|&l| l > 0.0),
        "replicas must measure traffic: {lats:?}"
    );
    assert!(
        lats.iter().any(|&l| (l - lats[0]).abs() > 1e-12),
        "different seeds must produce different runs: {lats:?}"
    );
}

#[test]
fn mesh_and_tree_latency_maps_have_topology_shapes() {
    let mesh = run(quick_synth(
        TopologyKind::Mesh8x8,
        PolicyKind::Drb,
        TrafficPattern::Shuffle,
        600.0,
    ));
    assert_eq!(mesh.latency_map.shape, (8, 8));
    let tree = run(quick_synth(
        TopologyKind::FatTree443,
        PolicyKind::Drb,
        TrafficPattern::Shuffle,
        600.0,
    ));
    assert_eq!(tree.latency_map.shape, (16, 3));
}

#[test]
fn small_custom_topologies_work() {
    for topology in [
        TopologyKind::Mesh { w: 4, h: 3 },
        TopologyKind::Tree { k: 2, n: 3 },
    ] {
        let schedule = BurstSchedule::continuous(TrafficPattern::Uniform, 300.0);
        let mut cfg = SimConfig::synthetic(topology, PolicyKind::PrDrb, schedule, 8);
        cfg.duration_ns = 200_000;
        cfg.max_ns = 100 * MILLISECOND;
        let r = run(cfg);
        assert_eq!(r.offered, r.accepted);
    }
}

#[test]
fn zero_duration_run_is_empty_but_sane() {
    let mut cfg = quick_synth(
        TopologyKind::Mesh8x8,
        PolicyKind::Drb,
        TrafficPattern::Uniform,
        400.0,
    );
    cfg.duration_ns = 0;
    let r = run(cfg);
    assert_eq!(r.offered, r.accepted);
    assert_eq!(r.throughput_ratio(), 1.0);
}
