//! Golden-digest determinism tests for the hot-path optimizations.
//!
//! The timing-wheel calendar, the packet arena and the memoized route
//! tables are pure wall-clock optimizations: they must not change a
//! single output bit. Each test runs a shortened stand-in for one of the
//! headline repro targets (`fig4_8`, `fig4_13`, `load_sweep`) under both
//! calendar backends and asserts the run-cache CSV encodings — which
//! serialize every f64 as its exact bit pattern — are byte-identical.
//! The heap backend exercises none of the wheel/cascade machinery, so
//! agreement here pins the optimized paths to the reference semantics.
//!
//! Digests are compared between backends inside one process rather than
//! against hardcoded constants: latency math goes through `ln()`, whose
//! last-ULP behaviour is platform-dependent, so a stored digest would
//! couple the test to one libm build.

use pr_drb::engine::cache::report_to_csv;
use pr_drb::engine::RunKey;
use pr_drb::prelude::*;
use pr_drb::simcore::QueueKind;

/// Run `cfg` under both calendar backends and at 1/2/3/4/8 fabric
/// shards (non-divisor counts included — uneven partitions must not
/// perturb a bit); assert the cache keys and the canonical CSV reports
/// agree byte for byte across every execution variant.
fn assert_backend_invariant(label: &str, cfg: SimConfig) {
    let mut heap_cfg = cfg.clone();
    heap_cfg.net.queue = QueueKind::Heap;
    let mut wheel_cfg = cfg;
    wheel_cfg.net.queue = QueueKind::Wheel;
    let (kh, kw) = (RunKey::of(&heap_cfg), RunKey::of(&wheel_cfg));
    assert_eq!(
        kh, kw,
        "{label}: the calendar backend must not enter the run-cache key"
    );
    let heap = run(heap_cfg);
    let reference = report_to_csv(kh, &heap);
    for shards in [1u32, 2, 3, 4, 8] {
        let mut cfg = wheel_cfg.clone();
        cfg.shards = shards;
        assert_eq!(
            RunKey::of(&cfg),
            kh,
            "{label}: the shard count must not enter the run-cache key"
        );
        let report = run(cfg);
        assert_eq!(
            report_to_csv(kw, &report),
            reference,
            "{label}: wheel-backed run at shards={shards} diverged from \
             the heap reference"
        );
    }
    // Optimistic (checkpoint/rollback) execution legs: speculation may
    // only change how much each barrier commits, never what — the
    // committed artifacts must match the serial reference bit for bit
    // on both calendar backends, and the knob (like the shard count)
    // must stay out of the run identity.
    for (shards, queue) in [
        (2u32, QueueKind::Wheel),
        (4, QueueKind::Wheel),
        (4, QueueKind::Heap),
    ] {
        let mut cfg = wheel_cfg.clone();
        cfg.net.queue = queue;
        cfg.shards = shards;
        cfg.speculate = true;
        assert_eq!(
            RunKey::of(&cfg),
            kh,
            "{label}: the speculation knob must not enter the run-cache key"
        );
        let report = run(cfg);
        assert_eq!(
            report_to_csv(kw, &report),
            reference,
            "{label}: speculative run at shards={shards} ({queue:?}) \
             diverged from the heap reference"
        );
    }
}

/// Shortened `fig4_8`: mesh hot-spot situation 1 under DRB — exercises
/// the mesh route tables, MSP headers and the destination-based monitor.
#[test]
fn mesh_hotspot_digest_is_backend_invariant() {
    let mesh = pr_drb::topology::Mesh2D::new(8, 8);
    let scenario = HotSpotScenario::situation1(&mesh);
    let mut cfg = SimConfig::synthetic(
        TopologyKind::Mesh8x8,
        PolicyKind::Drb,
        BurstSchedule::continuous(TrafficPattern::Uniform, 100.0),
        0,
    );
    cfg.workload = Workload::Flows {
        flows: scenario.flows.clone(),
        mbps: 600.0,
        noise_nodes: scenario.noise_nodes.clone(),
        noise_mbps: 40.0,
        msg_bytes: 1024,
    };
    cfg.duration_ns = MILLISECOND / 2;
    cfg.max_ns = 50 * MILLISECOND;
    assert_backend_invariant("fig4_8 stand-in", cfg);
}

/// Shortened `fig4_13`: fat-tree shuffle bursts under PR-DRB — exercises
/// the tree tables (seed routes), the solution database and ACK traffic.
#[test]
fn fat_tree_permutation_digest_is_backend_invariant() {
    let schedule = BurstSchedule::repetitive(TrafficPattern::Shuffle, 600.0, 200_000, 100_000);
    let mut cfg = SimConfig::synthetic(TopologyKind::FatTree443, PolicyKind::PrDrb, schedule, 32);
    cfg.duration_ns = MILLISECOND;
    cfg.max_ns = 200 * MILLISECOND;
    assert_backend_invariant("fig4_13 stand-in", cfg);
}

/// Faulted fat-tree scenario: a seeded mid-run fault plan (link-downs,
/// recoveries and a router-down) under PR-DRB. Fault application is a
/// pure function of the plan and simulated time, so the dropped-packet
/// accounting, the degraded-mode rerouting and the solution
/// invalidations must all land identically under both calendar backends
/// and at every shard count — and the plan must enter the run key (same
/// config minus the plan is a different run).
#[test]
fn faulted_scenario_digest_is_backend_invariant() {
    use pr_drb::topology::{FaultEvent, FaultPlan, RouterId, TimedFault};
    let schedule = BurstSchedule::continuous(TrafficPattern::Shuffle, 400.0);
    let mut cfg = SimConfig::synthetic(TopologyKind::FatTree443, PolicyKind::PrDrb, schedule, 32);
    cfg.duration_ns = MILLISECOND / 2;
    cfg.max_ns = 50 * MILLISECOND;
    let topo = TopologyKind::FatTree443.build();
    let mut events = FaultPlan::seeded(&topo, 7, 4, 50_000, 400_000)
        .events()
        .to_vec();
    events.push(TimedFault {
        at: 150_000,
        fault: FaultEvent::RouterDown {
            router: RouterId(20),
        },
    });
    cfg.faults = FaultPlan::new(events);
    let mut fault_free = cfg.clone();
    fault_free.faults = FaultPlan::none();
    assert_ne!(
        RunKey::of(&cfg),
        RunKey::of(&fault_free),
        "the fault plan must participate in the run-cache key"
    );
    assert_backend_invariant("faulted stand-in", cfg);
}

/// Each collective family (operation × schedule shape) lowered onto the
/// trace player. Collectives run serial by design (the player leaves
/// zero host lookahead), so shard counts 2/4 must fall back to the
/// serial fabric bit-identically — the invariance here proves the
/// fallback, and the calendar backends still both execute for real.
#[test]
fn collective_digest_is_backend_invariant() {
    for (kind, shape) in [
        (CollectiveKind::AllToAll, ScheduleShape::Ring),
        (CollectiveKind::AllToAll, ScheduleShape::Tree),
        (CollectiveKind::AllReduce, ScheduleShape::Ring),
        (CollectiveKind::AllReduce, ScheduleShape::Tree),
    ] {
        let spec = CollectiveSpec::new(kind, shape, 16, 16 * 1024);
        let cfg = SimConfig::collective(TopologyKind::FatTree443, PolicyKind::PrDrb, spec, 2);
        assert_backend_invariant(&format!("collective {}", spec.label()), cfg);
    }
}

/// The mini-app phase loop on the 8×8 mesh under PR-DRB: phase streams
/// consult the program and the phase-boundary wakeups, both host-side
/// and therefore identical under every fabric backend.
#[test]
fn phased_digest_is_backend_invariant() {
    let program = PhaseProgram::mini_app(3, 150_000, 500.0);
    let cfg = SimConfig::phased(TopologyKind::Mesh8x8, PolicyKind::PrDrb, program, 32);
    assert_backend_invariant("mini-app phases", cfg);
}

/// The open-loop heavy-tail workload: per-source sampler substreams are
/// pure functions of the seed, so the arrival process — and with it the
/// whole run — must not depend on the execution backend.
#[test]
fn open_loop_digest_is_backend_invariant() {
    let mut cfg = SimConfig::open_loop(
        TopologyKind::FatTree443,
        PolicyKind::PrDrb,
        OpenLoopSpec::heavy_tail(40_000.0),
        32,
    );
    cfg.duration_ns = MILLISECOND / 2;
    cfg.max_ns = 50 * MILLISECOND;
    assert_backend_invariant("open-loop heavy-tail", cfg);
}

/// Per-link latency classes on a board-assembled mesh: wires crossing a
/// board seam carry a large global-class extra
/// (`NetworkConfig::wire_class_extra_ns`), the strip partitioner snaps
/// its cuts to the seams, and the window driver earns the full
/// inter-board delay as lookahead — the wide-window configuration the
/// parallel fabric is optimized for. The extra delay is physical (it
/// changes every seam crossing's timing), so it must enter the run key,
/// and the wide-window execution must stay bit-identical to serial at
/// every shard count and under both calendar backends.
#[test]
fn board_mesh_latency_class_digest_is_backend_invariant() {
    let schedule = BurstSchedule::continuous(TrafficPattern::Shuffle, 400.0);
    let mut cfg = SimConfig::synthetic(
        TopologyKind::BoardMesh {
            w: 8,
            h: 8,
            board_h: 2,
        },
        PolicyKind::PrDrb,
        schedule,
        32,
    );
    cfg.net.wire_class_extra_ns = [0, 240, 0];
    cfg.duration_ns = MILLISECOND / 2;
    cfg.max_ns = 50 * MILLISECOND;
    let mut flat = cfg.clone();
    flat.net.wire_class_extra_ns = [0, 0, 0];
    assert_ne!(
        RunKey::of(&cfg),
        RunKey::of(&flat),
        "latency-class extras are physical and must enter the run key"
    );
    assert_backend_invariant("board-mesh latency classes", cfg);
}

/// Shortened `load_sweep` point: continuous shuffle near saturation for
/// every policy family member — the deterministic route floods the
/// calendar with far-apart retries, stressing the wheel's overflow path.
#[test]
fn load_sweep_digest_is_backend_invariant() {
    for policy in [
        PolicyKind::Deterministic,
        PolicyKind::Drb,
        PolicyKind::PrDrb,
    ] {
        let schedule = BurstSchedule::continuous(TrafficPattern::Shuffle, 800.0);
        let mut cfg = SimConfig::synthetic(TopologyKind::FatTree443, policy, schedule, 32);
        cfg.duration_ns = MILLISECOND / 2;
        cfg.max_ns = 4000 * MILLISECOND;
        assert_backend_invariant("load_sweep stand-in", cfg);
    }
}
