//! The paper's qualitative claims as integration tests.
//!
//! Scaled down so `cargo test` stays quick in debug builds; the
//! full-scale versions live in the `repro` harness (one target per
//! table/figure).

use pr_drb::prelude::*;

/// Congested fat-tree shuffle (one long repetitive-burst window).
fn congested_cfg(policy: PolicyKind) -> SimConfig {
    let schedule = BurstSchedule::repetitive(TrafficPattern::Shuffle, 700.0, 400_000, 200_000);
    let mut cfg = SimConfig::synthetic(TopologyKind::FatTree443, policy, schedule, 32);
    cfg.duration_ns = 1_800_000;
    cfg.max_ns = 2000 * MILLISECOND;
    cfg.drb.adjust_settle_ns = 120_000;
    cfg
}

fn congested(policy: PolicyKind, seed: u64) -> RunReport {
    let mut cfg = congested_cfg(policy);
    cfg.seed = seed;
    run(cfg)
}

/// §4.3 methodology through the engine's parallel replica executor: the
/// fold's latency mean is the same left-to-right `sum / n` the old
/// hand-rolled loop computed.
fn avg_latency(policy: PolicyKind) -> f64 {
    let replicas = run_replicas(&congested_cfg(policy), &[1, 2, 3]);
    RunReport::fold_replicas(replicas).global_avg_latency_us
}

#[test]
fn drb_beats_deterministic_under_congestion() {
    // Chapter 4's baseline claim: alternative-path balancing relieves
    // the fixed-route hot links.
    let det = avg_latency(PolicyKind::Deterministic);
    let drb = avg_latency(PolicyKind::Drb);
    assert!(
        drb < det * 0.9,
        "DRB should clearly beat deterministic under congestion: {drb:.1} vs {det:.1} us"
    );
}

#[test]
fn prdrb_does_not_lose_to_drb_and_learns() {
    // §4.6: PR-DRB re-applies saved solutions on repetitive bursts and
    // keeps (at least) DRB's latency.
    let drb = avg_latency(PolicyKind::Drb);
    let pr = avg_latency(PolicyKind::PrDrb);
    assert!(
        pr <= drb * 1.05,
        "PR-DRB must not lose to DRB on repetitive traffic: {pr:.1} vs {drb:.1} us"
    );
    let r = congested(PolicyKind::PrDrb, 1);
    assert!(
        r.policy_stats.patterns_found > 0,
        "no congestion patterns learned"
    );
    assert!(r.notifications > 0, "CFD never fired");
}

#[test]
fn congestion_detection_only_under_congestion() {
    // A lightly loaded network must not trigger the congestion
    // machinery (the class-S observation of §4.8.2).
    let schedule = BurstSchedule::continuous(TrafficPattern::Shuffle, 50.0);
    let mut cfg = SimConfig::synthetic(TopologyKind::FatTree443, PolicyKind::PrDrb, schedule, 32);
    cfg.duration_ns = 500_000;
    cfg.max_ns = 100 * MILLISECOND;
    let r = run(cfg);
    assert_eq!(
        r.policy_stats.expansions, 0,
        "no congestion, no path opening"
    );
}

#[test]
fn fr_watchdog_fires_under_heavy_congestion() {
    // §4.8.4: FR-DRB reacts on missing ACKs instead of waiting for them.
    let schedule = BurstSchedule::continuous(TrafficPattern::HotSpot(NodeId(63)), 900.0);
    let mut cfg = SimConfig::synthetic(TopologyKind::FatTree443, PolicyKind::FrDrb, schedule, 16);
    cfg.duration_ns = 1_200_000;
    cfg.max_ns = 2000 * MILLISECOND;
    let r = run(cfg);
    assert!(
        r.policy_stats.watchdog_fires > 0 || r.policy_stats.expansions > 0,
        "FR-DRB should react to the incast"
    );
}

#[test]
fn application_traces_prefer_adaptive_routing() {
    // §4.8: Det never beats the DRB family on the congested traces.
    let trace = || nas_mg(NasClass::A, 64);
    let mut det_cfg =
        SimConfig::trace(TopologyKind::FatTree443, PolicyKind::Deterministic, trace());
    let mut drb_cfg = SimConfig::trace(TopologyKind::FatTree443, PolicyKind::Drb, trace());
    for c in [&mut det_cfg, &mut drb_cfg] {
        c.drb.threshold_low_ns = 500;
        c.drb.threshold_high_ns = 10_000;
    }
    let det = run(det_cfg);
    let drb = run(drb_cfg);
    assert!(
        drb.global_avg_latency_us <= det.global_avg_latency_us * 1.02,
        "DRB {:.1} vs det {:.1} us",
        drb.global_avg_latency_us,
        det.global_avg_latency_us
    );
    assert!(
        drb.exec_time_ns.unwrap() <= det.exec_time_ns.unwrap() * 102 / 100,
        "exec time should not regress"
    );
}

#[test]
fn offered_equals_accepted_even_at_saturation() {
    // §4.2: "we guarantee that the ratio between the offered load and
    // the accepted load is always maintained".
    let schedule = BurstSchedule::continuous(TrafficPattern::HotSpot(NodeId(0)), 1500.0);
    let mut cfg = SimConfig::synthetic(
        TopologyKind::Mesh8x8,
        PolicyKind::Deterministic,
        schedule,
        12,
    );
    cfg.duration_ns = 400_000;
    cfg.max_ns = 4000 * MILLISECOND;
    let r = run(cfg);
    assert_eq!(r.offered, r.accepted);
    assert_eq!(r.throughput_ratio(), 1.0);
}

#[test]
fn trend_prediction_reacts_before_threshold() {
    // §5.2 open line: predict congestion from the latency trajectory.
    let schedule = BurstSchedule::repetitive(TrafficPattern::Shuffle, 700.0, 400_000, 200_000);
    let mut cfg = SimConfig::synthetic(TopologyKind::FatTree443, PolicyKind::PrDrb, schedule, 32);
    cfg.duration_ns = 1_200_000;
    cfg.max_ns = 2000 * MILLISECOND;
    cfg.drb.trend_window = 8;
    let r = run(cfg);
    assert!(
        r.policy_stats.trend_predictions > 0,
        "the trend detector should fire on burst ramps"
    );
    assert_eq!(r.offered, r.accepted);
}

#[test]
fn offline_preload_warms_the_solution_database() {
    // §5.2 static variant: offline meta-information about the pattern.
    use pr_drb::core::ProfiledFlow;
    use pr_drb::simcore::SimRng;
    let mut rng = SimRng::new(0);
    let profile: Vec<ProfiledFlow> = (0..32u32)
        .map(|s| ProfiledFlow {
            src: NodeId(s),
            dst: TrafficPattern::Shuffle.dest(NodeId(s), 64, &mut rng),
            bytes: 1_000_000,
        })
        .collect();
    let schedule = BurstSchedule::repetitive(TrafficPattern::Shuffle, 700.0, 400_000, 200_000);
    let mut cfg = SimConfig::synthetic(TopologyKind::FatTree443, PolicyKind::PrDrb, schedule, 32);
    cfg.duration_ns = 1_200_000;
    cfg.max_ns = 2000 * MILLISECOND;
    cfg.preload_profile = profile;
    let r = run(cfg);
    assert!(
        r.policy_stats.reuse_applications > 0,
        "preloaded solutions should be applied from the first episode"
    );
}

#[test]
fn adaptive_per_hop_is_the_upper_reference() {
    let run_k = |k: PolicyKind| {
        let schedule = BurstSchedule::continuous(TrafficPattern::Shuffle, 700.0);
        let mut cfg = SimConfig::synthetic(TopologyKind::FatTree443, k, schedule, 32);
        cfg.duration_ns = 800_000;
        cfg.max_ns = 2000 * MILLISECOND;
        run(cfg)
    };
    let det = run_k(PolicyKind::Deterministic);
    let ada = run_k(PolicyKind::Adaptive);
    assert!(
        ada.global_avg_latency_us < det.global_avg_latency_us,
        "per-hop adaptivity must beat the fixed route: {:.1} vs {:.1}",
        ada.global_avg_latency_us,
        det.global_avg_latency_us
    );
    assert_eq!(ada.offered, ada.accepted);
}

#[test]
fn tail_latencies_are_ordered() {
    let schedule = BurstSchedule::continuous(TrafficPattern::Shuffle, 600.0);
    let mut cfg = SimConfig::synthetic(TopologyKind::FatTree443, PolicyKind::PrDrb, schedule, 32);
    cfg.duration_ns = 600_000;
    cfg.max_ns = 2000 * MILLISECOND;
    let r = run(cfg);
    let (p50, p95, p99) = r.tail_latency_us();
    assert!(p50 > 0.0);
    assert!(
        p50 <= p95 && p95 <= p99,
        "quantiles must be monotone: {p50} {p95} {p99}"
    );
}
