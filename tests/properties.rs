//! Workspace-level property-based tests: whole-stack invariants under
//! randomized configurations.

use pr_drb::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// No configuration loses packets: the credit-based fabric is
    /// lossless for every policy, load and seed.
    #[test]
    fn lossless_for_any_policy_load_and_seed(
        policy_idx in 0usize..7,
        mbps in 100f64..1200f64,
        seed in 0u64..1000,
        mesh in proptest::bool::ANY,
    ) {
        let policy = PolicyKind::ALL[policy_idx];
        let topology = if mesh { TopologyKind::Mesh8x8 } else { TopologyKind::FatTree443 };
        let schedule = BurstSchedule::continuous(TrafficPattern::Uniform, mbps);
        let mut cfg = SimConfig::synthetic(topology, policy, schedule, 16);
        cfg.duration_ns = 150_000;
        cfg.max_ns = 4000 * MILLISECOND;
        cfg.seed = seed;
        let r = run(cfg);
        prop_assert_eq!(r.offered, r.accepted);
        prop_assert!(r.end_ns < cfg_max());
    }
}

fn cfg_max() -> u64 {
    4000 * MILLISECOND
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any of the generated application traces completes on the fat
    /// tree for any DRB-family policy (no player deadlock, no loss).
    #[test]
    fn traces_complete_for_random_small_rank_counts(
        ranks in 4usize..20,
        app in 0usize..4,
        drb in proptest::bool::ANY,
    ) {
        let trace = match app {
            0 => nas_lu(NasClass::S, ranks),
            1 => sweep3d(ranks),
            2 => pop(ranks, 2),
            _ => smg2000(ranks),
        };
        let policy = if drb { PolicyKind::PrDrb } else { PolicyKind::Deterministic };
        let cfg = SimConfig::trace(TopologyKind::FatTree443, policy, trace);
        let r = run(cfg);
        prop_assert!(!r.truncated);
        prop_assert_eq!(r.offered, r.accepted);
        prop_assert!(r.exec_time_ns.unwrap() > 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The application-level workload generators preserve packet
    /// conservation: for any collective family, phase program or
    /// open-loop arrival spec, on either topology and any seed, the
    /// fault-free run drains completely with `offered == accepted +
    /// dropped` and nothing dropped.
    #[test]
    fn workload_generators_conserve_packets(
        family in 0usize..6,
        seed in 0u64..500,
        mesh in proptest::bool::ANY,
    ) {
        let topology = if mesh { TopologyKind::Mesh8x8 } else { TopologyKind::FatTree443 };
        let mut cfg = match family {
            0 => SimConfig::collective(topology, PolicyKind::PrDrb,
                CollectiveSpec::new(CollectiveKind::AllToAll, ScheduleShape::Ring, 8, 4096), 1),
            1 => SimConfig::collective(topology, PolicyKind::Drb,
                CollectiveSpec::new(CollectiveKind::AllReduce, ScheduleShape::Tree, 12, 4096), 1),
            2 => SimConfig::phased(topology, PolicyKind::PrDrb,
                PhaseProgram::mini_app(2, 60_000, 400.0), 16),
            3 => SimConfig::phased(topology, PolicyKind::Deterministic,
                PhaseProgram::mini_app(1, 80_000, 600.0), 12),
            4 => {
                let mut c = SimConfig::open_loop(topology, PolicyKind::PrDrb,
                    OpenLoopSpec::heavy_tail(25_000.0), 16);
                c.duration_ns = 150_000;
                c
            }
            _ => {
                let mut c = SimConfig::open_loop(topology, PolicyKind::Drb,
                    OpenLoopSpec::heavy_tail(60_000.0), 24);
                c.duration_ns = 200_000;
                c
            }
        };
        cfg.seed = seed;
        let r = run(cfg);
        prop_assert!(!r.truncated);
        prop_assert_eq!(r.offered, r.accepted + r.dropped);
        prop_assert_eq!(r.dropped, 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The parallel replica executor returns bit-identical reports to
    /// the serial reference, proven through the run cache's canonical
    /// CSV encoding (f64s serialize as exact bit patterns, so equal
    /// bytes means equal reports down to the last ULP).
    #[test]
    fn parallel_replicas_match_serial_bit_for_bit(
        policy_idx in 0usize..7,
        mbps in 200f64..900f64,
        base_seed in 0u64..500,
        mesh in proptest::bool::ANY,
    ) {
        use pr_drb::engine::cache::report_to_csv;
        use pr_drb::engine::{run_replicas, run_replicas_serial, RunKey};
        let policy = PolicyKind::ALL[policy_idx];
        let topology = if mesh { TopologyKind::Mesh8x8 } else { TopologyKind::FatTree443 };
        let schedule = BurstSchedule::continuous(TrafficPattern::Uniform, mbps);
        let mut cfg = SimConfig::synthetic(topology, policy, schedule, 16);
        cfg.duration_ns = 120_000;
        cfg.max_ns = 4000 * MILLISECOND;
        let seeds = [base_seed, base_seed.wrapping_add(1), base_seed.wrapping_add(2)];
        let par = run_replicas(&cfg, &seeds);
        let ser = run_replicas_serial(&cfg, &seeds);
        prop_assert_eq!(par.len(), ser.len());
        for ((p, s), &seed) in par.iter().zip(&ser).zip(&seeds) {
            let mut c = cfg.clone();
            c.seed = seed;
            let key = RunKey::of(&c);
            prop_assert_eq!(report_to_csv(key, p), report_to_csv(key, s));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Sharded execution — conservative or optimistic — is
    /// bit-identical to the serial fabric on randomized topologies and
    /// traffic: for any mesh / fat-tree shape, policy, load and seed,
    /// running with `shards ∈ {2, 4}` (with or without
    /// checkpoint/rollback speculation) reproduces the `shards = 1`
    /// report byte for byte through the run cache's canonical CSV
    /// encoding.
    #[test]
    fn sharded_runs_match_serial_bit_for_bit(
        policy_idx in 0usize..7,
        mbps in 200f64..1000f64,
        seed in 0u64..1000,
        shape in 0usize..4,
        pattern in 0usize..3,
        speculate in proptest::bool::ANY,
    ) {
        use pr_drb::engine::cache::report_to_csv;
        use pr_drb::engine::RunKey;
        let policy = PolicyKind::ALL[policy_idx];
        let topology = match shape {
            0 => TopologyKind::Mesh8x8,
            1 => TopologyKind::Mesh { w: 4, h: 8 },
            2 => TopologyKind::FatTree443,
            _ => TopologyKind::Tree { k: 2, n: 4 },
        };
        let pattern = match pattern {
            0 => TrafficPattern::Uniform,
            1 => TrafficPattern::Shuffle,
            _ => TrafficPattern::Transpose,
        };
        let schedule = BurstSchedule::continuous(pattern, mbps);
        let mut cfg = SimConfig::synthetic(topology, policy, schedule, 16);
        cfg.duration_ns = 120_000;
        cfg.max_ns = 4000 * MILLISECOND;
        cfg.seed = seed;
        let key = RunKey::of(&cfg);
        let serial = report_to_csv(key, &run(cfg.clone()));
        for shards in [2u32, 4] {
            let mut c = cfg.clone();
            c.shards = shards;
            // Optimistic execution is an execution knob like the shard
            // count: committed results must not move, keys must not
            // change.
            c.speculate = speculate;
            prop_assert_eq!(RunKey::of(&c), key);
            let sharded = report_to_csv(key, &run(c));
            prop_assert_eq!(
                &serial, &sharded,
                "shards={} speculate={} diverged on {:?}/{:?}",
                shards, speculate, topology, policy
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Wide-window execution under randomized per-link latency classes:
    /// for any global/server-class wire extras, board shape, policy and
    /// seed, a sharded run reproduces the serial report byte for byte
    /// under BOTH calendar backends. The extras stretch the windows the
    /// conservative driver may run (and move every long-wire crossing
    /// in simulated time), but they must never open a gap between the
    /// sharded and serial schedules — and being physical, they must not
    /// be erased from the run key by the shard/queue exclusions.
    #[test]
    fn latency_classed_sharded_runs_match_serial_bit_for_bit(
        policy_idx in 0usize..7,
        global_extra in 0u64..400,
        server_extra in 0u64..50,
        shape in 0usize..3,
        seed in 0u64..1000,
        shards in 2u32..6,
    ) {
        use pr_drb::engine::cache::report_to_csv;
        use pr_drb::engine::RunKey;
        use pr_drb::simcore::QueueKind;
        let policy = PolicyKind::ALL[policy_idx];
        let topology = match shape {
            0 => TopologyKind::BoardMesh { w: 4, h: 8, board_h: 2 },
            1 => TopologyKind::BoardMesh { w: 8, h: 8, board_h: 4 },
            _ => TopologyKind::FatTree443,
        };
        let schedule = BurstSchedule::continuous(TrafficPattern::Uniform, 500.0);
        let mut cfg = SimConfig::synthetic(topology, policy, schedule, 16);
        cfg.net.wire_class_extra_ns = [0, global_extra, server_extra];
        cfg.duration_ns = 120_000;
        cfg.max_ns = 4000 * MILLISECOND;
        cfg.seed = seed;
        let key = RunKey::of(&cfg);
        let serial = report_to_csv(key, &run(cfg.clone()));
        for queue in [QueueKind::Heap, QueueKind::Wheel] {
            let mut c = cfg.clone();
            c.net.queue = queue;
            c.shards = shards;
            prop_assert_eq!(RunKey::of(&c), key,
                "execution knobs must stay out of the run key");
            let sharded = report_to_csv(key, &run(c));
            prop_assert_eq!(
                &serial, &sharded,
                "shards={} queue={:?} diverged on {:?}/{:?}",
                shards, queue, topology, policy
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merging per-replica quantile sketches is lossless: the merged
    /// sketch answers every quantile exactly like one sketch fed the
    /// concatenated samples, and its p50/p95/p99 stay monotone.
    #[test]
    fn quantile_merge_matches_concatenated_sketch(
        a in proptest::collection::vec(1u64..5_000_000, 1..80),
        b in proptest::collection::vec(1u64..5_000_000, 1..80),
        c in proptest::collection::vec(1u64..5_000_000, 0..80),
    ) {
        use pr_drb::metrics::LatencyQuantiles;
        let mut merged = LatencyQuantiles::new();
        let mut baseline = LatencyQuantiles::new();
        for chunk in [&a, &b, &c] {
            let mut sketch = LatencyQuantiles::new();
            for &v in chunk.iter() {
                sketch.push(v);
                baseline.push(v);
            }
            merged.merge(&sketch);
        }
        prop_assert_eq!(merged.total(), baseline.total());
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            prop_assert_eq!(merged.quantile_ns(q), baseline.quantile_ns(q));
        }
        let (p50, p95, p99) = merged.summary_us();
        prop_assert!(p50 <= p95 && p95 <= p99,
            "merged quantiles must be monotone: {} {} {}", p50, p95, p99);
        let (b50, b95, b99) = baseline.summary_us();
        prop_assert!((p50 - b50).abs() < 1e-9 && (p95 - b95).abs() < 1e-9
            && (p99 - b99).abs() < 1e-9,
            "merged summary must match the single-sketch baseline");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The per-destination running means (Eq 4.1) aggregate to a global
    /// average (Eq 4.2) bounded by the min/max destination means.
    #[test]
    fn global_latency_is_between_destination_extremes(
        seed in 0u64..100,
    ) {
        let schedule = BurstSchedule::continuous(TrafficPattern::Shuffle, 500.0);
        let mut cfg = SimConfig::synthetic(
            TopologyKind::FatTree443, PolicyKind::Deterministic, schedule, 32);
        cfg.duration_ns = 150_000;
        cfg.max_ns = 1000 * MILLISECOND;
        cfg.seed = seed;
        let r = run(cfg);
        // The series' overall mean and the global average must agree on
        // the order of magnitude (both built from the same samples).
        let series_mean = SeriesSummary::of(&r.series).mean_us;
        prop_assert!(series_mean > 0.0);
        prop_assert!(r.global_avg_latency_us > 0.0);
        prop_assert!(r.global_avg_latency_us < series_mean * 10.0 + 1.0);
        prop_assert!(series_mean < r.global_avg_latency_us * 10.0 + 1.0);
    }
}
