//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no crates-io registry, so the workspace
//! patches `criterion` to this crate. Benchmarks compile and run —
//! each `bench_function` executes a warm-up pass plus `sample_size`
//! timed samples and prints min/mean per iteration — without the
//! statistical machinery or HTML reports of the real crate.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup; only distinguishes semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Fresh setup per measured iteration.
    PerIteration,
    /// Small batches (treated as per-iteration here).
    SmallInput,
    /// Large batches (treated as per-iteration here).
    LargeInput,
}

/// Timer handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    total: Duration,
    min: Duration,
    iters: u64,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Self {
            samples,
            total: Duration::ZERO,
            min: Duration::MAX,
            iters: 0,
        }
    }

    /// Time `f` over the configured number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up, untimed
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            let dt = start.elapsed();
            self.total += dt;
            self.min = self.min.min(dt);
            self.iters += 1;
        }
    }

    /// Time `routine` on fresh `setup` output each sample.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup())); // warm-up, untimed
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            let dt = start.elapsed();
            self.total += dt;
            self.min = self.min.min(dt);
            self.iters += 1;
        }
    }
}

fn report(name: &str, b: &Bencher) {
    if b.iters == 0 {
        println!("{name:<40} (no samples)");
        return;
    }
    let mean = b.total / b.iters as u32;
    println!(
        "{name:<40} min {:>12.3?}  mean {:>12.3?}  ({} samples)",
        b.min, mean, b.iters
    );
}

/// Benchmark registry/driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(name.as_ref(), &b);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl AsRef<str>) -> BenchmarkGroup<'_> {
        println!("== group {} ==", name.as_ref());
        BenchmarkGroup {
            parent: self,
            sample_size: None,
        }
    }
}

/// A group sharing a sample-size override.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Override the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Run one named benchmark within the group.
    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size.unwrap_or(self.parent.sample_size));
        f(&mut b);
        report(name.as_ref(), &b);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Bundle benchmark functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        c.bench_function("t", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }

    #[test]
    fn groups_and_batched_run() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        let mut total = 0u64;
        g.bench_function("b", |b| {
            b.iter_batched(|| 2u64, |x| total += x, BatchSize::PerIteration)
        });
        g.finish();
        assert_eq!(total, 8); // 1 warm-up + 3 samples
    }
}
