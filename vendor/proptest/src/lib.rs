//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no crates-io registry, so the workspace
//! patches `proptest` to this crate. It keeps the call-site surface the
//! project's property tests use — the `proptest!` macro with
//! `#![proptest_config(..)]`, `prop_assert!`/`prop_assert_eq!`,
//! `prop_oneof!`, `Just`, range strategies, tuple strategies,
//! `prop_map`, `proptest::bool::ANY` and `proptest::collection::vec` —
//! on top of a deterministic sampler (no shrinking): each test draws
//! its cases from a SplitMix64 stream seeded by the test's name, so
//! failures reproduce exactly across runs.

/// Deterministic test-case RNG (SplitMix64).
pub mod test_runner {
    /// Per-test pseudo-random stream.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed deterministically from the test name.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.as_bytes() {
                h ^= *b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw below `bound` (> 0).
        pub fn below(&mut self, bound: u64) -> u64 {
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Runner configuration: how many cases to draw per property.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of sampled cases.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` sampled inputs.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A generator of test values.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Box a strategy for heterogeneous unions (`prop_oneof!`).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` combinator.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Build from the macro's boxed arms.
        pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Self { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }

    int_strategy!(u8, u16, u32, u64, usize, i32, i64);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + rng.unit() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform `bool` strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    /// The uniform boolean strategy value.
    pub const ANY: AnyBool = AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Vector of values from `element`, with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Build a vector strategy.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The imports every property test pulls in.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert inside a property, reporting the failing expression.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} ({})", stringify!($cond), format!($($fmt)*)
            ));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($a), stringify!($b), left, right
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}; {})",
                stringify!($a), stringify!($b), left, right, format!($($fmt)*)
            ));
        }
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($a),
                stringify!($b),
                left
            ));
        }
    }};
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($arm)),+])
    };
}

/// Define property tests: each named function samples its arguments
/// from the given strategies for `cases` iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

/// Internal item-by-item expander for [`proptest!`].
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr);) => {};
    (($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome = (|| -> ::std::result::Result<(), String> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(message) = outcome {
                    panic!("property {} failed at case {}: {}", stringify!($name), case, message);
                }
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

#[cfg(test)]
#[allow(clippy::overly_complex_bool_expr)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 0f64..2.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.0..2.5).contains(&y));
        }

        #[test]
        fn tuples_and_vec_compose(
            v in crate::collection::vec((0u32..4, 10u32..14), 1..9),
            b in crate::bool::ANY,
        ) {
            prop_assert!(!v.is_empty() && v.len() < 9);
            for (a, c) in &v {
                prop_assert!(*a < 4 && (10..14).contains(c));
            }
            prop_assert!(b || !b);
        }

        #[test]
        fn oneof_and_map_compose(
            k in prop_oneof![Just(1u32), Just(5u32)],
            m in (1u32..3).prop_map(|x| x * 100),
        ) {
            prop_assert!(k == 1 || k == 5);
            prop_assert!(m == 100 || m == 200);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::for_test("t");
        let mut b = crate::test_runner::TestRng::for_test("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
