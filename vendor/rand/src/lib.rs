//! Offline stand-in for the `rand` crate (0.8 API surface).
//!
//! The build container has no crates-io registry, so the workspace
//! patches `rand` to this crate. Only the surface `prdrb-simcore`
//! consumes is provided: `rngs::StdRng` (+`Clone`/`Debug`),
//! `SeedableRng::seed_from_u64`, `RngCore::next_u64`, `Rng::gen::<f64>`
//! and `Rng::gen_range` over integer ranges.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — not the
//! ChaCha12 of upstream `StdRng`, so absolute simulation numbers differ
//! from a crates-io build, but every determinism property holds: a seed
//! fully determines the stream, and distinct seeds decorrelate.

use std::ops::Range;

/// Low-level entropy source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from seed material.
pub trait SeedableRng: Sized {
    /// Build the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step, used for seeding.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named random number generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The project-default generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Types samplable uniformly by `Rng::gen`.
pub trait Standard: Sized {
    /// Draw one value from the standard distribution.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits → [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by `Rng::gen_range`.
pub trait SampleRange {
    /// The produced value type.
    type Output;

    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Unbiased-enough bounded draw via 128-bit widening multiply (Lemire).
fn bounded(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;

            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + bounded(rng, span) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize);

impl SampleRange for Range<f64> {
    type Output = f64;

    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// High-level convenience methods, blanket-implemented for any core rng.
pub trait Rng: RngCore {
    /// Sample from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform draw from a half-open range.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range_and_varied() {
        let mut r = StdRng::seed_from_u64(7);
        let xs: Vec<f64> = (0..1000).map(|_| r.gen::<f64>()).collect();
        assert!(xs.iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..2000 {
            let x = r.gen_range(5u64..17);
            assert!((5..17).contains(&x));
            let y = r.gen_range(0usize..3);
            assert!(y < 3);
        }
        // Every residue is reachable.
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[r.gen_range(0usize..3)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
