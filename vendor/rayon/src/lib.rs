//! Offline stand-in for the `rayon` crate.
//!
//! The build container has no crates-io registry, so the workspace
//! patches `rayon` to this crate. It implements the small slice of the
//! rayon API the project uses — `par_iter()` / `into_par_iter()`
//! followed by `map(..).collect()` — with real OS-thread parallelism:
//! the input is split into contiguous chunks, one scoped thread per
//! chunk (bounded by the available parallelism), and the outputs are
//! concatenated in input order. That preserves rayon's key guarantee
//! relied on throughout the sweep harness: `collect()` returns results
//! in the same deterministic order as the serial iterator would.

use std::num::NonZeroUsize;

/// Everything the call sites import.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

/// Number of worker threads to use for `len` items.
fn threads_for(len: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(4);
    hw.min(len).max(1)
}

/// A materialized "parallel iterator": the items to process, in order.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// The result of `map`: items plus the mapping function, executed by
/// `collect` / `for_each`.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

/// Minimal parallel-iterator interface: `map` then `collect`.
pub trait ParallelIterator: Sized {
    /// Item type produced by the iterator.
    type Item: Send;

    /// Consume into the materialized item list (in order).
    fn into_items(self) -> Vec<Self::Item>;

    /// Lazily map each item; the work happens in `collect`.
    fn map<R, F>(self, f: F) -> ParMap<Self::Item, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        ParMap {
            items: self.into_items(),
            f,
        }
    }
}

impl<T: Send> ParallelIterator for ParIter<T> {
    type Item = T;

    fn into_items(self) -> Vec<T> {
        self.items
    }
}

impl<T: Send, F> ParMap<T, F> {
    /// Run the map on scoped threads and collect outputs in input order.
    pub fn collect<C, R>(self) -> C
    where
        R: Send,
        F: Fn(T) -> R + Sync,
        C: FromIterator<R>,
    {
        run_ordered(self.items, &self.f).into_iter().collect()
    }
}

/// Execute `f` over `items` on scoped threads, returning outputs in the
/// original item order (chunked decomposition, then concatenation).
fn run_ordered<T: Send, R: Send>(items: Vec<T>, f: &(impl Fn(T) -> R + Sync)) -> Vec<R> {
    let n = items.len();
    if n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let workers = threads_for(n);
    if workers == 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(workers);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut rest = items;
    while rest.len() > chunk {
        let tail = rest.split_off(chunk);
        chunks.push(std::mem::replace(&mut rest, tail));
    }
    chunks.push(rest);
    let mut out: Vec<Vec<R>> = Vec::with_capacity(chunks.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| scope.spawn(move || c.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        for h in handles {
            out.push(h.join().expect("parallel worker panicked"));
        }
    });
    out.into_iter().flatten().collect()
}

/// `into_par_iter()` — consuming conversion.
pub trait IntoParallelIterator {
    /// Item type of the resulting parallel iterator.
    type Item: Send;

    /// Convert into a parallel iterator over owned items.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// `par_iter()` — by-reference conversion (slices, Vecs, arrays).
pub trait IntoParallelRefIterator {
    /// Element type borrowed from the collection.
    type Elem;

    /// Parallel iterator over `&Elem`.
    fn par_iter(&self) -> ParIter<&Self::Elem>;
}

impl<T: Sync> IntoParallelRefIterator for [T] {
    type Elem = T;

    fn par_iter(&self) -> ParIter<&T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<T: Sync> IntoParallelRefIterator for Vec<T> {
    type Elem = T;

    fn par_iter(&self) -> ParIter<&T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_consumes() {
        let v = vec![String::from("a"), String::from("bb"), String::from("ccc")];
        let out: Vec<usize> = v.into_par_iter().map(|s| s.len()).collect();
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn arrays_and_empty_inputs_work() {
        let out: Vec<u32> = [1u32, 2, 3].par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![2, 3, 4]);
        let empty: Vec<u32> = Vec::<u32>::new().into_par_iter().map(|x| x).collect();
        assert!(empty.is_empty());
    }

    #[test]
    fn really_runs_on_many_threads_or_at_least_terminates() {
        // 10k items through the chunked executor.
        let v: Vec<usize> = (0..10_000).collect();
        let out: Vec<usize> = v.into_par_iter().map(|x| x % 7).collect();
        assert_eq!(out.len(), 10_000);
        assert_eq!(out[13], 6);
    }
}
